"""Tests for the SLO layer (repro.obs.slo) and the ``repro monitor``
command: spec parsing, burn-rate arithmetic, windowing, the snapshot
digest, and the CLI on a recorded chaos-run stream."""

import json
import math

import numpy as np
import pytest

from repro.__main__ import main
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLOEvaluator,
    format_monitor,
    monitor_snapshot,
    parse_slo,
)


def _latency_events(kind, values, t0=0.0, dt=1.0):
    return [{"seq": i, "t": t0 + i * dt, "kind": kind, "elapsed_s": v}
            for i, v in enumerate(values)]


class TestParseSlo:
    def test_minimal_spec(self):
        slo = parse_slo("shard_done.elapsed_s:p99<0.25")
        assert slo.kind == "shard_done"
        assert slo.field == "elapsed_s"
        assert slo.percentile == 99.0
        assert slo.target == 0.25
        assert slo.window_s is None
        assert slo.name == "shard_done.elapsed_s"

    def test_named_spec_with_window(self):
        slo = parse_slo("tail=unit_done.elapsed_s:p95<0.5@60")
        assert slo.name == "tail"
        assert slo.percentile == 95.0
        assert slo.window_s == 60.0
        assert "tail" in slo.describe()
        assert "@60s" in slo.describe()

    def test_budget_from_percentile(self):
        assert parse_slo("a.b:p99<1").budget == pytest.approx(0.01)
        assert parse_slo("a.b:p50<1").budget == pytest.approx(0.5)

    @pytest.mark.parametrize("spec", [
        "",                              # empty
        "nonsense",                      # no structure
        "shard_done:p99<0.25",           # missing .FIELD
        "shard_done.elapsed_s:99<0.25",  # missing the p
        "shard_done.elapsed_s:p99>0.25", # only < is a promise
        "shard_done.elapsed_s:p99<",     # no target
        "a.b:p99<0.25@",                 # dangling window
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="spec|grammar|expected"):
            parse_slo(spec)

    @pytest.mark.parametrize("spec", [
        "a.b:p0<1",       # percentile must be in (0, 100)
        "a.b:p100<1",
        "a.b:p99<0",      # target must be positive
        "a.b:p99<1@0",    # window must be positive
    ])
    def test_out_of_range_numbers_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_slo(spec)

    def test_defaults_are_valid(self):
        assert len(DEFAULT_SLOS) == 2
        assert {slo.kind for slo in DEFAULT_SLOS} == \
            {"shard_done", "unit_done"}


class TestEvaluator:
    def test_no_data_status(self):
        reports = SLOEvaluator((parse_slo("a.b:p99<1"),)).evaluate([])
        assert reports[0]["status"] == "no-data"
        assert reports[0]["achieved"] is None
        assert reports[0]["burn_rate"] is None

    def test_ok_when_percentile_under_target(self):
        events = _latency_events("shard_done", [0.1] * 10)
        slo = parse_slo("shard_done.elapsed_s:p90<1.0")
        report = SLOEvaluator((slo,)).evaluate(events)[0]
        assert report["status"] == "ok"
        assert report["achieved"] == pytest.approx(0.1)
        assert report["breaches"] == 0
        assert report["burn_rate"] == 0.0

    def test_burn_rate_is_breach_fraction_over_budget(self):
        # p90 tolerates 10% of samples over target; 3 of 10 over
        # target burns budget at 3x the sustainable rate.
        events = _latency_events("shard_done", [0.1] * 7 + [5.0] * 3)
        slo = parse_slo("shard_done.elapsed_s:p90<1.0")
        report = SLOEvaluator((slo,)).evaluate(events)[0]
        assert report["status"] == "breach"
        assert report["breaches"] == 3
        assert report["breach_fraction"] == pytest.approx(0.3)
        assert report["burn_rate"] == pytest.approx(3.0)

    def test_break_even_burn_rate(self):
        # Exactly the budgeted breach fraction: burn rate 1.0 but the
        # achieved percentile (type-1, lower) still meets the target.
        events = _latency_events("shard_done", [0.1] * 9 + [5.0])
        slo = parse_slo("shard_done.elapsed_s:p90<1.0")
        report = SLOEvaluator((slo,)).evaluate(events)[0]
        assert report["burn_rate"] == pytest.approx(1.0)
        assert report["status"] == "ok"

    def test_window_excludes_old_samples(self):
        # 0..9s spaced 1s apart; only the last ~3 fall in a 2.5s
        # window ending at the stream's latest timestamp.
        values = [9.0] * 7 + [0.1] * 3
        events = _latency_events("shard_done", values)
        slo = parse_slo("shard_done.elapsed_s:p99<1.0@2.5")
        report = SLOEvaluator((slo,)).evaluate(events)[0]
        assert report["samples"] == 3
        assert report["status"] == "ok"
        unwindowed = parse_slo("shard_done.elapsed_s:p99<1.0")
        report = SLOEvaluator((unwindowed,)).evaluate(events)[0]
        assert report["samples"] == 10
        assert report["status"] == "breach"

    def test_non_numeric_fields_ignored(self):
        events = [{"t": 0.0, "kind": "shard_done", "elapsed_s": "slow"},
                  {"t": 1.0, "kind": "shard_done", "elapsed_s": True},
                  {"t": 2.0, "kind": "shard_done", "elapsed_s": 0.2}]
        slo = parse_slo("shard_done.elapsed_s:p99<1.0")
        report = SLOEvaluator((slo,)).evaluate(events)[0]
        assert report["samples"] == 1


class TestMonitorSnapshot:
    def _stream(self):
        return [
            {"seq": 0, "t": 0.0, "kind": "run_start", "pairs": 8,
             "run_id": "cafe0123", "backend": "thread"},
            {"seq": 1, "t": 0.1, "kind": "plan", "pairs": 8,
             "vector": 6, "wavefront": 2},
            {"seq": 2, "t": 0.5, "kind": "shard_done", "elapsed_s": 0.4},
            {"seq": 3, "t": 0.6, "kind": "fault", "fault": "crash"},
            {"seq": 4, "t": 0.7, "kind": "retry", "index": 1},
            {"seq": 5, "t": 0.8, "kind": "bisect", "pairs": 4},
            {"seq": 6, "t": 0.9, "kind": "unit_done", "elapsed_s": 0.1,
             "pairs": 4},
            {"seq": 7, "t": 1.0, "kind": "quarantine", "index": 3},
            {"seq": 8, "t": 1.1, "kind": "shed", "pairs": 2},
            {"seq": 9, "t": 1.2, "kind": "heartbeat", "done": 5,
             "total": 8, "failures": 1, "queued": 0},
        ]

    def test_snapshot_fields(self):
        snapshot = monitor_snapshot(self._stream(), window_s=None)
        assert snapshot["run_id"] == "cafe0123"
        assert snapshot["backend"] == "thread"
        assert snapshot["done"] == 5 and snapshot["total"] == 8
        assert snapshot["failures"] == 1
        assert snapshot["routes"] == {"vector": 6, "wavefront": 2}
        assert snapshot["latencies"]["shard_done"]["p50"] == \
            pytest.approx(0.4)
        assert snapshot["latencies"]["unit_done"]["count"] == 1
        assert snapshot["faults"] == {"crash": 1}
        assert snapshot["retries"] == 1
        assert snapshot["bisections"] == 1
        assert snapshot["shed_pairs"] == 2
        assert snapshot["quarantined"] == 1
        assert snapshot["ended"] is False

    def test_run_end_marks_ended(self):
        events = self._stream() + [{"seq": 10, "t": 1.3,
                                    "kind": "run_end", "failures": 1}]
        assert monitor_snapshot(events)["ended"] is True

    def test_empty_stream(self):
        snapshot = monitor_snapshot([])
        assert snapshot["events"] == 0
        assert snapshot["ended"] is False
        assert snapshot["latencies"] == {}
        # Still renders without crashing.
        assert "running" in format_monitor(snapshot)

    def test_format_monitor_panel(self):
        slos = (parse_slo("shard_done.elapsed_s:p50<1.0"),
                parse_slo("hot=shard_done.elapsed_s:p50<0.01"),
                parse_slo("cold=batch_end.elapsed_s:p50<1.0"))
        snapshot = monitor_snapshot(self._stream(), objectives=slos,
                                    window_s=None)
        panel = format_monitor(snapshot)
        assert "run cafe0123 [thread] running" in panel
        assert "progress 5/8" in panel
        assert "vector=6" in panel and "wavefront=2" in panel
        assert "shard_done" in panel and "p99=" in panel
        assert "health" in panel and "crash=1" in panel
        assert "shed_pairs=2" in panel
        assert "slo OK " in panel   # under target
        assert "slo !! hot" in panel  # breached
        assert "slo -- cold" in panel  # no batch_end data
        assert "burn=" in panel

    def test_truncated_lines_reported(self):
        panel = format_monitor(monitor_snapshot(self._stream(),
                                                skipped=2))
        assert "2 truncated line(s) skipped" in panel


def _pairs(count, length=24, seed=11):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, 4, length, dtype=np.uint8),
             rng.integers(0, 4, length, dtype=np.uint8))
            for _ in range(count)]


@pytest.fixture(scope="module")
def chaos_events_file(tmp_path_factory):
    """A recorded supervised chaos run's events.jsonl."""
    from repro.config import dna_edit_config
    from repro.exec.engine import BatchConfig
    from repro.obs import Observability
    from repro.obs.events import open_jsonl
    from repro.resilience import (
        ChaosPlan,
        ResilienceConfig,
        SupervisedEngine,
    )

    path = tmp_path_factory.mktemp("slo") / "events.jsonl"
    stream = open_jsonl(str(path))
    ctx = Observability.enabled_context(events=stream)
    policy = ResilienceConfig(backend="thread", backoff_base_s=0.0,
                              validate=True)
    plan = ChaosPlan(crash=0.2, seed=3)
    SupervisedEngine(dna_edit_config(), BatchConfig(workers=2), policy,
                     obs=ctx, plan=plan).run(_pairs(12))
    stream.close()
    return str(path)


class TestMonitorCli:
    def test_once_renders_snapshot(self, chaos_events_file, capsys):
        assert main(["monitor", chaos_events_file, "--once"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("run ")
        assert "[thread] ended" in out
        assert "slo " in out

    def test_follow_exits_at_run_end(self, chaos_events_file, capsys):
        # The recorded stream already holds run_end, so follow mode
        # renders one panel and returns.
        assert main(["monitor", chaos_events_file,
                     "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "ended" in out
        assert out.rstrip().endswith("---")

    def test_custom_slo_breach_is_flagged(self, chaos_events_file,
                                          capsys):
        # Nothing real finishes in under a nanosecond. (unit_done, not
        # shard_done: with chaos on, recovery units do the finishing.)
        assert main(["monitor", chaos_events_file, "--once",
                     "--no-default-slos",
                     "--slo", "hot=unit_done.elapsed_s:p50<1e-9"]) == 0
        out = capsys.readouterr().out
        assert "slo !! hot" in out
        assert "burn=" in out

    def test_bad_slo_spec_exits_2(self, chaos_events_file, capsys):
        assert main(["monitor", chaos_events_file, "--once",
                     "--slo", "not-a-spec"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_file_exits_2(self, capsys):
        assert main(["monitor", "/nonexistent/events.jsonl",
                     "--once"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_truncated_tail_tolerated_once(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "run_start", "t": 0.0, "pairs": 2}\n'
                        '{"kind": "run_e')
        assert main(["monitor", str(path), "--once"]) == 0
        assert "1 truncated line(s) skipped" in capsys.readouterr().out
        assert main(["monitor", str(path), "--once", "--strict"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_follow_skips_garbage_line(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "run_start", "t": 0.0, "pairs": 1}\n'
                        "{garbage\n"
                        '{"kind": "run_end", "t": 0.5, "failures": 0}\n')
        assert main(["monitor", str(path), "--interval", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "1 truncated line(s) skipped" in out

    def test_follow_strict_rejects_garbage_line(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text("{garbage\n"
                        '{"kind": "run_end", "t": 0.5}\n')
        assert main(["monitor", str(path), "--interval", "0.01",
                     "--strict"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_slo_burn_rates_on_recorded_stream(self, chaos_events_file):
        """The recorded chaos stream yields finite, self-consistent
        burn-rate arithmetic end to end."""
        from repro.obs.events import read_jsonl
        events = read_jsonl(chaos_events_file)
        kinds = {e["kind"] for e in events}
        assert "fault" in kinds  # the chaos plan actually fired
        reports = SLOEvaluator(DEFAULT_SLOS).evaluate(events)
        by_name = {r["name"]: r for r in reports}
        for report in by_name.values():
            if report["status"] == "no-data":
                continue
            assert report["burn_rate"] == pytest.approx(
                report["breach_fraction"] / report["budget"])
            assert math.isfinite(report["achieved"])
