"""Mergeable latency digest: error bounds and exact-merge semantics.

The digest's one load-bearing promise is **partition invariance**: a
parent that merges worker snapshots answers every quantile bit-for-bit
identically to a single digest that saw the union of all samples, no
matter how the samples were split or in what order the states merged.
The Hypothesis suite drives that promise directly on the exported
state (dict equality is stricter than quantile equality).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.obs.digest import DEFAULT_GROWTH, LatencyDigest


def relative_error(estimate: float, truth: float) -> float:
    if truth == 0:
        return abs(estimate)
    return abs(estimate - truth) / abs(truth)


def assert_states_equal(left: dict, right: dict) -> None:
    """Exported states equal, with ``total`` compared approximately.

    ``total`` is a float running sum whose last ulps depend on
    addition order; every quantile-bearing field (counts, buckets,
    min/max) must match exactly.
    """
    left_total = left.pop("total")
    right_total = right.pop("total")
    assert left_total == pytest.approx(right_total, rel=1e-12, abs=1e-9)
    assert left == right


class TestObserve:
    def test_empty(self):
        digest = LatencyDigest()
        assert digest.count == 0
        assert digest.quantile(0.5) is None
        assert digest.summary()["count"] == 0

    def test_single_value_exact(self):
        digest = LatencyDigest()
        digest.observe(42.5)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == 42.5

    def test_min_max_exact(self):
        digest = LatencyDigest()
        digest.observe_many([3.7, 120.0, 0.002, 55.1])
        assert digest.min == 0.002
        assert digest.max == 120.0
        assert digest.quantile(0.0) == 0.002
        assert digest.quantile(1.0) == 120.0

    def test_zero_and_negative_values(self):
        digest = LatencyDigest()
        digest.observe_many([-10.0, 0.0, 10.0])
        assert digest.quantile(0.0) == -10.0
        assert digest.quantile(1.0) == 10.0
        assert digest.count == 3

    def test_count_parameter(self):
        weighted = LatencyDigest()
        weighted.observe(5.0, count=4)
        unweighted = LatencyDigest()
        unweighted.observe_many([5.0] * 4)
        assert weighted.export_state() == unweighted.export_state()

    def test_nonpositive_count_ignored(self):
        digest = LatencyDigest()
        digest.observe(5.0, count=0)
        digest.observe(5.0, count=-3)
        assert digest.count == 0

    def test_quantile_range_checked(self):
        digest = LatencyDigest()
        digest.observe(1.0)
        with pytest.raises(ValueError):
            digest.quantile(-0.1)
        with pytest.raises(ValueError):
            digest.quantile(1.1)

    def test_growth_must_exceed_one(self):
        with pytest.raises(ValueError):
            LatencyDigest(growth=1.0)

    def test_mean(self):
        digest = LatencyDigest()
        digest.observe_many([1.0, 2.0, 3.0])
        assert digest.mean == pytest.approx(2.0)

    def test_relative_error_bound(self):
        # Bucketing at growth g keeps every representative within a
        # factor g of the true value: relative error <= g - 1.
        digest = LatencyDigest()
        values = [1.5 ** k for k in range(-20, 40)]
        digest.observe_many(values)
        values.sort()
        for i, truth in enumerate(values):
            q = (i + 1) / len(values)
            estimate = digest.quantile(q)
            assert relative_error(estimate, truth) <= DEFAULT_GROWTH - 1


class TestMerge:
    def test_merge_empty_state_is_noop(self):
        digest = LatencyDigest()
        digest.observe(3.0)
        before = digest.export_state()
        digest.merge_state(None)
        digest.merge_state({})
        digest.merge_state(LatencyDigest().export_state())
        assert digest.export_state() == before

    def test_merge_into_empty(self):
        source = LatencyDigest()
        source.observe_many([1.0, 2.0, 3.0])
        target = LatencyDigest()
        target.merge_state(source.export_state())
        assert target.export_state() == source.export_state()

    def test_growth_mismatch_raises(self):
        coarse = LatencyDigest(growth=2.0)
        coarse.observe(1.0)
        digest = LatencyDigest()
        with pytest.raises(ValueError, match="growth"):
            digest.merge_state(coarse.export_state())

    def test_from_state_round_trip(self):
        digest = LatencyDigest()
        digest.observe_many([0.5, -2.0, 0.0, 77.0])
        clone = LatencyDigest.from_state(digest.export_state())
        assert clone.export_state() == digest.export_state()

    def test_state_is_json_safe(self):
        import json
        digest = LatencyDigest()
        digest.observe_many([1e-9, 3.0, 4e12])
        state = json.loads(json.dumps(digest.export_state()))
        clone = LatencyDigest.from_state(state)
        assert clone.export_state() == digest.export_state()


finite_samples = st.lists(
    st.floats(min_value=-1e12, max_value=1e12,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=60)


class TestPartitionInvariance:
    @given(values=finite_samples, cut=st.integers(0, 60),
           swap=st.booleans())
    def test_two_way_split_matches_union(self, values, cut, swap):
        cut = min(cut, len(values))
        parts = [values[:cut], values[cut:]]
        if swap:
            parts.reverse()
        merged = LatencyDigest()
        for part in parts:
            worker = LatencyDigest()
            worker.observe_many(part)
            merged.merge_state(worker.export_state())
        union = LatencyDigest()
        union.observe_many(values)
        assert_states_equal(merged.export_state(),
                            union.export_state())
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert merged.quantile(q) == union.quantile(q)

    @given(values=finite_samples,
           seed=st.integers(0, 2 ** 31 - 1),
           shards=st.integers(2, 5))
    def test_random_partition_and_order(self, values, seed, shards):
        import random
        rng = random.Random(seed)
        parts: list[list[float]] = [[] for _ in range(shards)]
        for value in values:
            parts[rng.randrange(shards)].append(value)
        states = []
        for part in parts:
            worker = LatencyDigest()
            worker.observe_many(part)
            states.append(worker.export_state())
        rng.shuffle(states)
        merged = LatencyDigest()
        for state in states:
            merged.merge_state(state)
        union = LatencyDigest()
        union.observe_many(values)
        assert_states_equal(merged.export_state(),
                            union.export_state())

    @given(values=finite_samples)
    def test_quantiles_monotone(self, values):
        digest = LatencyDigest()
        digest.observe_many(values)
        qs = [i / 20 for i in range(21)]
        answers = digest.quantiles(qs)
        assert answers == sorted(answers)
        assert answers[0] == digest.min
        assert answers[-1] == digest.max

    @given(values=finite_samples)
    def test_summary_percentiles_within_bounds(self, values):
        digest = LatencyDigest()
        digest.observe_many(values)
        summary = digest.summary()
        for key in ("p50", "p90", "p99"):
            assert digest.min <= summary[key] <= digest.max
        assert summary["count"] == len(values)
        assert math.isfinite(summary[key])
