"""Adaptive kernel planner: routing, conformance, and load shedding.

Locks the new adaptive execution paths to the brute-force oracles and
to each other:

- the batched wavefront kernel (``sweep_wavefront``) is bit-identical
  to the scalar :class:`WavefrontAligner` -- scores, CIGARs and DP
  stats -- and both agree with ``tests/oracle.py`` on scores;
- ``engine="auto"`` is bit-identical (score *and* CIGAR *and* meta) to
  the fixed full-vector engine, order-invariant, and routing decisions
  never change results;
- deadline-aware load shedding reports shed pairs exactly once as
  structured ``"deadline"`` failures with reconciling counters, and
  never expires a started shard mid-batch.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.wavefront import WavefrontAligner
from repro.api import align, align_batch, score, score_batch
from repro.config import dna_edit_config, dna_gap_config, standard_configs
from repro.errors import ConfigurationError
from repro.exec.buckets import bucketize
from repro.exec.engine import BatchConfig, BatchEngine
from repro.exec.planner import (
    ROUTE_BANDED,
    ROUTE_FULL,
    ROUTE_WAVEFRONT,
    PlannerPolicy,
    band_is_certified,
    certified_half_width,
    estimate_divergence,
    is_edit_model,
    plan_routes,
    width_class,
)
from repro.exec.wavefront import sweep_wavefront, wavefront_cigar
from repro.obs import Observability
from repro.obs.events import EventStream
from repro.obs.prof import CostModel
from repro.resilience import ResilienceConfig, SupervisedEngine, parse_rates
from tests.conftest import make_pair
from tests.oracle import cached_oracle

CONFIGS = standard_configs()
EDIT = dna_edit_config()
GAP = dna_gap_config()

THREAD = dict(backend="thread", backoff_base_s=0.0)


def dna_codes(min_size=0, max_size=48):
    return st.lists(st.integers(0, 3), min_size=min_size,
                    max_size=max_size).map(
        lambda codes: np.asarray(codes, dtype=np.uint8))


def pair_batches(max_pairs=8, max_len=48):
    return st.lists(st.tuples(dna_codes(max_size=max_len),
                              dna_codes(max_size=max_len)),
                    min_size=1, max_size=max_pairs)


def _mixed_corpus(rng, count=18):
    """Pairs spanning the planner's three routes plus degenerate ones."""
    pairs = []
    for i in range(count):
        error = (0.0, 0.03, 0.2, 0.5)[i % 4]
        n = 36 + int(rng.integers(0, 80))
        pairs.append(make_pair(EDIT, n, error, rng))
    empty = np.empty(0, dtype=np.uint8)
    pairs.append((empty, empty))
    pairs.append((EDIT.alphabet.random(9, rng), empty))
    pairs.append((empty, EDIT.alphabet.random(7, rng)))
    pairs.append((EDIT.alphabet.random(3, rng),
                  EDIT.alphabet.random(200, rng)))
    return pairs


# ----------------------------------------------------------------------
# Planner unit behaviour


class TestPlannerPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlannerPolicy(k=0)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(wavefront_divergence=-0.1)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(banded_divergence=1.5)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(wavefront_divergence=0.5, banded_divergence=0.2)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(min_length=-1)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(probe_slack=0)
        with pytest.raises(ConfigurationError):
            PlannerPolicy(band_slack=-1)

    def test_is_edit_model(self):
        assert is_edit_model(EDIT.model)
        assert not is_edit_model(GAP.model)

    def test_divergence_estimate_bounds(self, rng):
        q = EDIT.alphabet.random(120, rng)
        assert estimate_divergence(q, q, 8) == 0.0
        r = EDIT.alphabet.random(120, rng)
        assert 0.0 <= estimate_divergence(q, r, 8) <= 1.0
        short = EDIT.alphabet.random(4, rng)
        assert estimate_divergence(short, short, 8) == 1.0

    def test_routes_follow_divergence(self, rng):
        identical = EDIT.alphabet.random(100, rng)
        near = make_pair(EDIT, 100, 0.03, rng)
        far = (EDIT.alphabet.random(100, rng),
               EDIT.alphabet.random(100, rng))
        tiny = (EDIT.alphabet.random(4, rng), EDIT.alphabet.random(4, rng))
        empty = np.empty(0, dtype=np.uint8)
        pairs = [(identical, identical.copy()), near, far, tiny,
                 (empty, identical)]
        routes, estimates = plan_routes(pairs, EDIT.model, PlannerPolicy())
        assert routes[0] == ROUTE_WAVEFRONT
        assert routes[1] in (ROUTE_WAVEFRONT, ROUTE_BANDED)
        assert routes[2] == ROUTE_FULL
        assert routes[3] == ROUTE_FULL
        assert routes[4] == ROUTE_FULL
        assert len(estimates) == len(pairs)
        assert all(e >= 0 for e in estimates)

    def test_no_wavefront_route_for_gap_model(self, rng):
        q = GAP.alphabet.random(100, rng)
        routes, _ = plan_routes([(q, q.copy())], GAP.model, PlannerPolicy())
        assert routes == [ROUTE_BANDED]

    def test_width_class_rounds_up_to_power_of_two(self):
        assert width_class(1) == 1
        assert width_class(3) == 4
        assert width_class(4) == 4
        assert width_class(33) == 64


class TestBandCertificate:
    def test_certificate_is_safe_for_random_pairs(self, rng):
        """A banded run at the certified width reproduces the exact
        score: the corridor provably contains every optimal path."""
        from repro.exec import kernels
        for config in (EDIT, GAP):
            for _ in range(12):
                n = 24 + int(rng.integers(0, 60))
                q, r = make_pair(config, n, 0.25, rng)
                exact = cached_oracle("global", config,
                                      bytes(bytearray(q)),
                                      bytes(bytearray(r)))[0]
                half = certified_half_width(config.model, len(q), len(r),
                                            exact)
                assert half is not None
                assert band_is_certified(config.model, len(q), len(r),
                                         exact, half)
                for bucket in bucketize([(q, r)], 8):
                    swept, _, _ = kernels.sweep_banded(
                        bucket, config.model, width=half, fraction=None,
                        keep=False)
                    assert int(swept[0]) == exact

    def test_degenerate_model_has_no_certificate(self):
        from repro.scoring.model import MatchMismatchModel
        flat = MatchMismatchModel(match=-2, mismatch=-2,
                                  gap_i=-1, gap_d=-1)
        assert certified_half_width(flat, 10, 10, -5) is None
        assert not band_is_certified(flat, 10, 10, -5, 1000)

    def test_lower_scores_only_widen(self):
        tight = certified_half_width(EDIT.model, 50, 50, 0)
        loose = certified_half_width(EDIT.model, 50, 50, -20)
        assert loose > tight


# ----------------------------------------------------------------------
# Batched wavefront kernel conformance


class TestWavefrontKernelConformance:
    @settings(deadline=None, max_examples=40)
    @given(pairs=pair_batches(max_pairs=6))
    def test_sweep_matches_scalar_aligner(self, pairs):
        """Batched sweep == scalar WavefrontAligner: distance, CIGAR,
        and DP stats, pair by pair."""
        scalar = WavefrontAligner()
        for bucket in bucketize(pairs, 8):
            if bucket.n_max == 0 or bucket.m_max == 0:
                continue
            sweep = sweep_wavefront(bucket, EDIT.model, keep=True)
            for b, position in enumerate(bucket.index):
                q, r = pairs[int(position)]
                single = scalar.align(q, r, EDIT.model)
                assert int(sweep.distance[b]) == -single.score
                cigar = wavefront_cigar(sweep, b, len(q), len(r))
                assert cigar == single.alignment.cigar
                assert int(sweep.cells[b]) == single.stats.cells_computed
                assert int(sweep.stored[b]) == single.stats.cells_stored

    @settings(deadline=None, max_examples=30)
    @given(pairs=pair_batches(max_pairs=5, max_len=32))
    def test_wavefront_engine_locks_to_oracle_scores(self, pairs):
        """-distance == oracle edit distance, and each CIGAR rescores
        to the optimal score against the original sequences."""
        batch = BatchConfig(engine="wavefront", traceback=True)
        results = BatchEngine(EDIT, batch).run(pairs)
        for (q, r), result in zip(pairs, results):
            exact = cached_oracle("global", EDIT, bytes(bytearray(q)),
                                  bytes(bytearray(r)))[0]
            assert result.score == exact
            result.alignment.validate(q, r, EDIT.model)

    def test_capped_sweep_falls_back_to_full(self, rng):
        pairs = [(EDIT.alphabet.random(64, rng),
                  EDIT.alphabet.random(64, rng)) for _ in range(6)]
        obs = Observability.enabled_context()
        batch = BatchConfig(engine="wavefront", traceback=True,
                            wavefront_max_score=2)
        results = BatchEngine(EDIT, batch, obs=obs).run(pairs)
        assert obs.metrics.counter("exec.wavefront.fallbacks").value > 0
        vector = BatchEngine(EDIT, BatchConfig(traceback=True)).run(pairs)
        for got, want in zip(results, vector):
            assert got.score == want.score

    def test_wavefront_engine_rejects_non_edit_model(self, rng):
        pairs = [make_pair(GAP, 20, 0.1, rng)]
        batch = BatchConfig(engine="wavefront")
        with pytest.raises(ConfigurationError):
            BatchEngine(GAP, batch).run(pairs)

    def test_engine_validation(self):
        with pytest.raises(ConfigurationError):
            BatchConfig(engine="wavefront", mode="local")
        with pytest.raises(ConfigurationError):
            BatchConfig(engine="auto", algorithm="banded")
        with pytest.raises(ConfigurationError):
            BatchConfig(wavefront_max_score=0)


# ----------------------------------------------------------------------
# engine="auto" conformance


class TestAutoEngineConformance:
    @settings(deadline=None, max_examples=30)
    @given(pairs=pair_batches(max_pairs=6),
           config_name=st.sampled_from(sorted(CONFIGS)))
    def test_auto_is_bit_identical_to_vector(self, pairs, config_name):
        """Routing never changes results: score, CIGAR and meta match
        the fixed full-vector engine exactly."""
        config = CONFIGS[config_name]
        auto = BatchEngine(config, BatchConfig(engine="auto",
                                               traceback=True)).run(pairs)
        full = BatchEngine(config, BatchConfig(engine="vector",
                                               traceback=True)).run(pairs)
        for got, want in zip(auto, full):
            assert got.score == want.score
            assert got.alignment.cigar == want.alignment.cigar
            assert got.alignment.meta == want.alignment.meta

    @settings(deadline=None, max_examples=25)
    @given(pairs=pair_batches(max_pairs=6),
           config_name=st.sampled_from(sorted(CONFIGS)))
    def test_auto_score_mode_matches_vector(self, pairs, config_name):
        config = CONFIGS[config_name]
        auto = BatchEngine(config, BatchConfig(engine="auto",
                                               traceback=False)).run(pairs)
        full = BatchEngine(config, BatchConfig(engine="vector",
                                               traceback=False)).run(pairs)
        assert [r.score for r in auto] == [r.score for r in full]

    @settings(deadline=None, max_examples=20)
    @given(pairs=pair_batches(max_pairs=8), seed=st.integers(0, 2**32 - 1))
    def test_auto_is_order_invariant(self, pairs, seed):
        batch = BatchConfig(engine="auto", traceback=True)
        baseline = BatchEngine(EDIT, batch).run(pairs)
        order = np.random.default_rng(seed).permutation(len(pairs))
        shuffled = BatchEngine(EDIT, batch).run([pairs[i] for i in order])
        for position, original in enumerate(order):
            assert shuffled[position].score == baseline[original].score
            assert (shuffled[position].alignment.cigar
                    == baseline[original].alignment.cigar)

    def test_auto_locks_to_oracle_on_mixed_corpus(self, rng):
        """Seeded corpus spanning all three routes: every score and
        CIGAR equals the brute-force oracle's."""
        pairs = _mixed_corpus(rng)
        results = BatchEngine(EDIT, BatchConfig(engine="auto",
                                                traceback=True)).run(pairs)
        for (q, r), result in zip(pairs, results):
            exact_score, exact_cigar = cached_oracle(
                "global", EDIT, bytes(bytearray(q)), bytes(bytearray(r)))
            assert result.score == exact_score
            assert result.alignment.cigar_string == exact_cigar

    def test_auto_emits_plan_telemetry(self, rng):
        pairs = _mixed_corpus(rng)
        obs = Observability.enabled_context(events=EventStream(),
                                            profile=True)
        BatchEngine(EDIT, BatchConfig(engine="auto", traceback=True),
                    obs=obs).run(pairs)
        routed = sum(
            obs.metrics.counter(f"exec.plan.{route}").value
            for route in (ROUTE_WAVEFRONT, ROUTE_BANDED, ROUTE_FULL))
        assert routed == len(pairs)
        plan = obs.events.last("plan")
        assert plan is not None
        assert plan["pairs"] == len(pairs)
        phases = {name for stack in obs.profiler.stacks
                  for name in stack}
        assert "exec.plan" in phases
        assert "linear.wavefront" in phases

    def test_auto_respects_custom_policy(self, rng):
        """A policy that disables the fast routes degrades auto to the
        plain full engine -- same results, all pairs routed full."""
        pairs = _mixed_corpus(rng, count=6)
        policy = PlannerPolicy(wavefront_divergence=0.0,
                               banded_divergence=0.0)
        obs = Observability.enabled_context()
        auto = BatchEngine(EDIT, BatchConfig(engine="auto", traceback=True,
                                             planner=policy),
                           obs=obs).run(pairs)
        full = BatchEngine(EDIT, BatchConfig(traceback=True)).run(pairs)
        assert obs.metrics.counter("exec.plan.full").value >= 6
        for got, want in zip(auto, full):
            assert got.score == want.score
            assert got.alignment.cigar == want.alignment.cigar


# ----------------------------------------------------------------------
# API + CLI surface


class TestApiMethod:
    def test_align_and_score_wavefront(self):
        alignment = align("GATTACA", "GATTTACA", method="wavefront")
        assert alignment.score == -1
        assert score("GATTACA", "GATTTACA", method="wavefront") == -1

    def test_empty_inputs_match_default_contract(self):
        for q, r in (("", ""), ("ACGT", ""), ("", "ACGT")):
            wave = align(q, r, method="wavefront")
            full = align(q, r)
            assert (wave.score, wave.cigar, wave.meta) \
                == (full.score, full.cigar, full.meta)
            assert score(q, r, method="wavefront") == score(q, r)

    def test_wavefront_method_needs_edit_model(self):
        with pytest.raises(ConfigurationError):
            align("AC", "AC", preset="dna-gap", method="wavefront")
        with pytest.raises(ConfigurationError):
            score("AC", "AC", preset="protein", method="wavefront")

    def test_wavefront_method_is_global_only(self):
        with pytest.raises(ConfigurationError):
            align("AC", "AC", mode="local", method="wavefront")
        with pytest.raises(ConfigurationError):
            align("AC", "AC", method="nope")

    def test_batch_front_end_accepts_new_engines(self):
        pairs = [("GATTACA", "GATTTACA"), ("ACGT", "ACGT"), ("", "AC")]
        want = align_batch(pairs)
        for engine in ("wavefront", "auto"):
            got = align_batch(pairs, engine=engine)
            assert [a.score for a in got] == [a.score for a in want]
        assert score_batch(pairs, engine="auto") \
            == score_batch(pairs, engine="vector")


# ----------------------------------------------------------------------
# Deadline-aware load shedding


def _slow_model(seconds_per_cell=0.005):
    """A pessimistic cost model: predicts hours of work for pairs that
    actually align in microseconds, forcing deterministic shedding
    under a deadline that never really expires."""
    return CostModel(seconds_per_cell=seconds_per_cell)


class TestLoadShedding:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(shed_safety=0.5)
        assert ResilienceConfig(shed=False).shed is False

    def test_sheds_predicted_cost_tail_exactly_once(self, rng):
        pairs = [make_pair(EDIT, 24 + 8 * i, 0.05, rng)
                 for i in range(12)]
        obs = Observability.enabled_context(events=EventStream())
        policy = ResilienceConfig(deadline_s=60.0,
                                  cost_model=_slow_model(),
                                  shed_safety=1.0, **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), policy, obs).run(pairs)
        assert outcome.failures, "pessimistic model must shed"
        assert all(f.fault == "deadline" and f.error_type == "LoadShed"
                   for f in outcome.failures)
        indices = [f.index for f in outcome.failures]
        assert len(indices) == len(set(indices))
        # Exactly-once: every pair is either a result or one failure,
        # never both, never neither -- no started shard expired.
        for i, result in enumerate(outcome.results):
            assert (result is None) == (i in set(indices))
        # Counters reconcile across all three reporting surfaces.
        shed = len(indices)
        assert outcome.counters["shed.pairs"] == shed
        assert obs.metrics.counter("exec.shed.pairs").value == shed
        events = obs.events.of_kind("shed")
        assert sum(e["pairs"] for e in events) == shed
        assert all(e["kept"] >= 0 and e["budget_s"] > 0 for e in events)

    def test_kept_prefix_is_cheapest(self, rng):
        """Shedding drops the *predicted-cost tail*: every kept pair is
        no more expensive than every shed pair."""
        lengths = [200, 20, 150, 30, 90, 250]
        pairs = [make_pair(EDIT, n, 0.02, rng) for n in lengths]
        model = _slow_model()
        policy = ResilienceConfig(deadline_s=30.0, cost_model=model,
                                  shed_safety=1.0, **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), policy).run(pairs)
        shed = {f.index for f in outcome.failures}
        assert shed and shed != set(range(len(pairs)))
        kept_costs = [model.estimate(pairs[i]).seconds
                      for i in range(len(pairs)) if i not in shed]
        shed_costs = [model.estimate(pairs[i]).seconds for i in shed]
        assert max(kept_costs) <= min(shed_costs)

    def test_no_shedding_without_deadline_or_when_disabled(self, rng):
        pairs = [make_pair(EDIT, 40, 0.05, rng) for _ in range(6)]
        unbounded = ResilienceConfig(cost_model=_slow_model(), **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), unbounded).run(pairs)
        assert not outcome.failures
        disabled = ResilienceConfig(deadline_s=30.0, shed=False,
                                    cost_model=_slow_model(), **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), disabled).run(pairs)
        assert not outcome.failures
        assert all(r is not None for r in outcome.results)

    def test_shed_survives_chaos_retries(self, rng):
        """Chaos faults requeue units through recovery; shedding there
        must still report every pair exactly once."""
        pairs = [make_pair(EDIT, 30 + 6 * i, 0.05, rng)
                 for i in range(10)]
        plan = parse_rates("rangeerror=0.4", seed=11)
        obs = Observability.enabled_context()
        policy = ResilienceConfig(deadline_s=60.0,
                                  cost_model=_slow_model(0.0004),
                                  shed_safety=1.0, max_retries=3,
                                  **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), policy, obs,
            plan=plan).run(pairs)
        seen: dict[int, int] = {}
        for failure in outcome.failures:
            seen[failure.index] = seen.get(failure.index, 0) + 1
        assert all(count == 1 for count in seen.values())
        for i, result in enumerate(outcome.results):
            assert (result is None) == (i in seen)
        shed = sum(1 for f in outcome.failures
                   if f.error_type == "LoadShed")
        assert outcome.counters.get("shed.pairs", 0) == shed
        assert obs.metrics.counter("exec.shed.pairs").value == shed

    def test_align_batch_shed_partials(self, rng):
        """The public front-end surfaces shed pairs as PairFailure
        records in submission order."""
        pairs = [("GATTACA" * 10, "GATTACA" * 10),
                 ("A" * 300, "A" * 299)]
        policy = ResilienceConfig(deadline_s=30.0,
                                  cost_model=_slow_model(),
                                  shed_safety=1.0, **THREAD)
        out = align_batch(pairs, resilience=policy)
        from repro.resilience import PairFailure
        failures = [x for x in out if isinstance(x, PairFailure)]
        assert failures
        assert all(f.fault == "deadline" for f in failures)

    def test_pre_expired_deadline_still_reports_deadline_exceeded(
            self, rng):
        """A deadline that is already gone keeps its original failure
        shape: DeadlineExceeded, not LoadShed."""
        pairs = [make_pair(EDIT, 30, 0.05, rng) for _ in range(4)]
        policy = ResilienceConfig(deadline_s=1e-6, **THREAD)
        outcome = SupervisedEngine(
            EDIT, BatchConfig(traceback=False), policy).run(pairs)
        assert len(outcome.failures) == len(pairs)
        assert all(f.fault == "deadline" for f in outcome.failures)
