"""Tests for the observability layer (repro.obs).

Covers: registry snapshot/diff semantics, disabled-mode no-op
behaviour, Chrome trace-event export from a real coprocessor run (the
golden-file contract Perfetto relies on), and the run-report JSON
round trip.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro import obs
from repro.analysis.reporting import write_json_report, write_report
from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.worker import BlockJob
from repro.obs import reports
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.obs.tracing import NULL_TRACER, REQUIRED_EVENT_KEYS, Tracer


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc(4)
        assert reg.snapshot() == {"x": 5.0}

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", level="L1D").inc()
        reg.counter("hits", level="L2").inc(2)
        snap = reg.snapshot()
        assert snap["hits{level=L1D}"] == 1.0
        assert snap["hits{level=L2}"] == 2.0

    def test_same_instrument_is_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("a", k=1) is reg.counter("a", k=1)
        assert reg.counter("a", k=1) is not reg.counter("a", k=2)

    def test_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge("depth").set(3)
        reg.gauge("depth").set(7)
        assert reg.snapshot() == {"depth": 7.0}

    def test_distribution_summary(self):
        reg = MetricsRegistry()
        dist = reg.distribution("lat")
        for v in (1, 2, 9):
            dist.observe(v)
        summary = reg.snapshot()["lat"]
        assert summary["count"] == 3
        assert summary["min"] == 1 and summary["max"] == 9
        assert summary["mean"] == pytest.approx(4.0)

    def test_diff_subtracts_and_omits_unchanged(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.counter("b").inc(1)
        before = reg.snapshot()
        reg.counter("a").inc(2)
        diff = reg.diff(before)
        assert diff == {"a": 2.0}  # b unchanged -> omitted

    def test_diff_of_distribution(self):
        reg = MetricsRegistry()
        reg.distribution("d").observe(10)
        before = reg.snapshot()
        reg.distribution("d").observe(30)
        diff = reg.diff(before)["d"]
        assert diff["count"] == 1
        assert diff["total"] == pytest.approx(30.0)
        assert diff["mean"] == pytest.approx(30.0)

    def test_diff_of_new_metric(self):
        reg = MetricsRegistry()
        before = reg.snapshot()
        reg.counter("fresh").inc(3)
        assert reg.diff(before) == {"fresh": 3.0}

    def test_scope_prefixes_names(self):
        reg = MetricsRegistry()
        scoped = reg.scope("coproc").scope("engine")
        scoped.counter("grants").inc()
        assert reg.snapshot() == {"coproc.engine.grants": 1.0}

    def test_distribution_percentiles_in_snapshot(self):
        reg = MetricsRegistry()
        dist = reg.distribution("lat")
        for v in range(1, 101):
            dist.observe(float(v))
        summary = reg.snapshot()["lat"]
        assert summary["min"] <= summary["p50"] <= summary["p90"] \
            <= summary["p99"] <= summary["max"]
        assert summary["p50"] == pytest.approx(50.0, rel=0.02)

    def test_distribution_min_max_exact_across_three_workers(self):
        # Regression guard for the worker round trip: extremes and
        # percentiles survive export_state/merge_state from THREE
        # worker registries bit-for-bit, regardless of merge order.
        samples = [[0.002, 3.7, 55.1], [120.0, 41.0], [7.5, 0.9, 88.0]]
        workers = []
        for values in samples:
            reg = MetricsRegistry()
            for v in values:
                reg.distribution("lat", engine="vector").observe(v)
            workers.append(reg.export_state())
        parent = MetricsRegistry()
        for state in reversed(workers):  # order must not matter
            parent.merge_state(state)
        union = MetricsRegistry()
        for v in (v for values in samples for v in values):
            union.distribution("lat", engine="vector").observe(v)
        key = "lat{engine=vector}"
        merged = parent.snapshot()[key]
        assert merged["min"] == 0.002
        assert merged["max"] == 120.0
        assert merged["count"] == 8
        expected = union.snapshot()[key]
        for field in ("count", "min", "max", "p50", "p90", "p99"):
            assert merged[field] == expected[field]


class TestDisabledMode:
    def test_null_registry_records_nothing(self):
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.gauge("g").set(5)
        NULL_REGISTRY.distribution("d").observe(1)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.diff({}) == {}
        assert not NULL_REGISTRY.enabled

    def test_null_instruments_are_shared(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")

    def test_null_tracer_records_nothing(self):
        track = NULL_TRACER.track("p", "t")
        NULL_TRACER.complete("span", track, 0, 10)
        with NULL_TRACER.host_span("host-work"):
            pass
        assert NULL_TRACER.to_chrome()["traceEvents"] == []

    def test_global_default_is_disabled(self):
        assert not obs.get_obs().enabled

    def test_set_obs_restores(self):
        ctx = obs.Observability.enabled_context()
        previous = obs.set_obs(ctx)
        try:
            assert obs.get_obs() is ctx
        finally:
            obs.set_obs(previous)
        assert obs.get_obs() is previous

    def test_disabled_simulation_matches_enabled(self):
        jobs = [BlockJob(n=200, m=200, ew=2, job_id=i) for i in range(3)]
        plain = CoprocessorSim(CoprocParams(n_workers=2)).run(jobs)
        ctx = obs.Observability.enabled_context()
        observed = CoprocessorSim(CoprocParams(n_workers=2),
                                  obs=ctx).run(jobs)
        assert observed == plain  # observability never changes timing


class TestTracer:
    def test_track_identity(self):
        tracer = Tracer()
        a = tracer.track("proc", "t0")
        assert tracer.track("proc", "t0") == a
        b = tracer.track("proc", "t1")
        assert b.pid == a.pid and b.tid != a.tid

    def test_complete_event_shape(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.complete("work", track, ts=5, dur=3, units=2)
        doc = tracer.to_chrome()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(spans) == 1
        event = spans[0]
        for key in REQUIRED_EVENT_KEYS:
            assert key in event
        assert event["ts"] == 5 and event["dur"] == 3
        assert event["args"]["units"] == 2

    def test_metadata_names_tracks(self):
        tracer = Tracer()
        tracer.track("smx-engine", "worker 0")
        names = [e["args"]["name"] for e in
                 tracer.to_chrome()["traceEvents"] if e["ph"] == "M"]
        assert "smx-engine" in names and "worker 0" in names

    def test_events_sorted_by_start(self):
        tracer = Tracer()
        track = tracer.track("p", "t")
        tracer.complete("late", track, ts=100, dur=1)
        tracer.complete("early", track, ts=2, dur=50)
        spans = [e for e in tracer.to_chrome()["traceEvents"]
                 if e["ph"] == "X"]
        assert [e["name"] for e in spans] == ["early", "late"]

    def test_max_events_drops_gracefully(self):
        tracer = Tracer(max_events=2)
        track = tracer.track("p", "t")
        for i in range(5):
            tracer.complete(f"s{i}", track, ts=i, dur=1)
        assert len(tracer.events) == 2
        assert tracer.dropped_events == 3
        assert tracer.to_chrome()["otherData"]["dropped_events"] == 3

    def test_host_span_measures_wall_clock(self):
        tracer = Tracer()
        with tracer.host_span("setup", items=3):
            pass
        event = tracer.events[0]
        assert event.name == "setup"
        assert event.dur >= 0
        assert event.args["items"] == 3

    def test_write_is_loadable_json(self, tmp_path):
        tracer = Tracer()
        tracer.complete("x", tracer.track("p", "t"), 0, 1)
        path = tracer.write(str(tmp_path / "trace.json"))
        with open(path) as handle:
            doc = json.load(handle)
        assert "traceEvents" in doc


class TestCoprocessorTraceGolden:
    """A small real simulation must export a valid Chrome trace."""

    @pytest.fixture()
    def run(self):
        ctx = obs.Observability.enabled_context()
        sim = CoprocessorSim(CoprocParams(n_workers=2), obs=ctx)
        report = sim.run([BlockJob(n=300, m=300, ew=2, job_id=i)
                          for i in range(4)])
        return ctx, report

    def test_required_keys_and_monotone_timestamps(self, run):
        ctx, _ = run
        doc = ctx.tracer.to_chrome()
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert spans, "simulation produced no spans"
        for event in spans:
            for key in REQUIRED_EVENT_KEYS:
                assert key in event, f"span missing {key}"
            assert event["dur"] >= 0
        timestamps = [e["ts"] for e in spans]
        assert timestamps == sorted(timestamps)

    def test_engine_spans_sum_to_busy_cycles(self, run):
        ctx, report = run
        engine = [e for e in ctx.tracer.to_chrome()["traceEvents"]
                  if e.get("cat") == "engine"]
        assert sum(e["dur"] for e in engine) == pytest.approx(
            report.engine_busy_cycles)

    def test_counters_match_report(self, run):
        ctx, report = run
        snap = ctx.metrics.snapshot()
        assert snap["coproc.tiles_computed"] == report.tiles_computed
        assert snap["coproc.lines_loaded"] == report.lines_loaded
        assert snap["coproc.lines_stored"] == report.lines_stored
        assert snap["coproc.jobs_completed"] == report.jobs_completed
        assert snap["coproc.total_cycles"] == report.total_cycles
        assert snap["coproc.engine_busy_cycles"] == \
            report.engine_busy_cycles
        assert snap["coproc.job_cycles"]["count"] == report.jobs_completed

    def test_phase_spans_cover_every_supertile(self, run):
        ctx, report = run
        spans = [e for e in ctx.tracer.to_chrome()["traceEvents"]
                 if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert {"load", "compute", "store"} <= names
        jobs = [e for e in spans if e.get("cat") == "job"]
        assert len(jobs) == report.jobs_completed


class TestRunReports:
    def test_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SMX_RESULTS_DIR", str(tmp_path))
        reg = MetricsRegistry()
        reg.counter("coproc.tiles_computed").inc(42)
        path = write_json_report(
            "exp_x", params={"blocks": 8},
            metrics=reg.snapshot(),
            timings=[{"name": "smx-score", "cycles": 123.0}],
            tables={"rows": [{"a": 1}]})
        assert path == str(tmp_path / "exp_x.json")
        loaded = reports.load_report(path)
        assert loaded["schema"] == reports.SCHEMA
        assert loaded["name"] == "exp_x"
        assert loaded["params"] == {"blocks": 8}
        assert loaded["metrics"]["coproc.tiles_computed"] == 42
        assert loaded["timings"][0]["cycles"] == 123.0
        assert loaded["tables"]["rows"] == [{"a": 1}]
        assert "created" in loaded

    def test_no_temp_files_left_behind(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SMX_RESULTS_DIR", str(tmp_path))
        write_report("exp_md", ["section"])
        write_json_report("exp_md", params={})
        leftovers = [f for f in os.listdir(tmp_path)
                     if f.endswith(".tmp")]
        assert leftovers == []
        assert sorted(os.listdir(tmp_path)) == ["exp_md.json",
                                                "exp_md.md"]

    def test_markdown_report_content(self, tmp_path, monkeypatch):
        monkeypatch.setenv("SMX_RESULTS_DIR", str(tmp_path))
        path = write_report("exp_md", ["alpha", "beta"])
        with open(path) as handle:
            assert handle.read() == "alpha\n\nbeta\n"

    def test_load_rejects_non_reports(self, tmp_path):
        path = tmp_path / "not_a_report.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(ValueError, match="schema"):
            reports.load_report(str(path))

    def test_timing_row_from_run_timing(self):
        from repro.sim.stats import RunTiming

        row = reports.timing_row(RunTiming(name="x", cycles=100.0,
                                           cells=50, alignments=1))
        assert row["name"] == "x"
        assert row["cycles"] == 100.0
        assert row["gcups"] > 0

    def test_format_metrics_renders_all_kinds(self):
        text = reports.format_metrics(
            {"a.count": 3.0, "b.ratio": 0.5,
             "c.dist": {"count": 2, "mean": 1.5, "min": 1, "max": 2}})
        assert "a.count" in text and "0.50" in text and "count=2" in text

    def test_format_metrics_empty(self):
        assert "no metrics" in reports.format_metrics({})

    def test_format_metrics_renders_percentiles(self):
        text = reports.format_metrics(
            {"lat": {"count": 3, "mean": 4.0, "min": 1, "max": 9,
                     "p50": 2.0, "p90": 8.5, "p99": 9.0}})
        assert "p50=2.0" in text
        assert "p90=8.5" in text and "p99=9.0" in text
        # Summaries without digest data stay on the old rendering.
        plain = reports.format_metrics(
            {"lat": {"count": 3, "mean": 4.0, "min": 1, "max": 9}})
        assert "p50" not in plain


class TestLogging:
    def test_get_logger_namespaced(self):
        assert obs.get_logger("coprocessor").name == "repro.coprocessor"

    def test_configure_from_env(self, monkeypatch):
        monkeypatch.setenv("SMX_LOG", "debug")
        logger = obs.configure_logging()
        try:
            assert logger.level == logging.DEBUG
            assert any(not isinstance(h, logging.NullHandler)
                       for h in logger.handlers)
        finally:
            monkeypatch.delenv("SMX_LOG")
            obs.configure_logging()

    def test_unset_env_is_silent(self, monkeypatch):
        monkeypatch.delenv("SMX_LOG", raising=False)
        logger = obs.configure_logging()
        assert all(isinstance(h, logging.NullHandler)
                   for h in logger.handlers)

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="SMX_LOG"):
            obs.configure_logging(level="verbose-ish")
        obs.configure_logging()  # restore a clean handler set

    def test_debug_line_emitted_during_simulation(self, caplog):
        with caplog.at_level(logging.DEBUG, logger="repro"):
            CoprocessorSim(CoprocParams(n_workers=1)).run(
                [BlockJob(n=64, m=64, ew=2)])
        assert any("coproc run" in r.message for r in caplog.records)
