"""Critical-path extraction (repro.obs.critpath) and the ``repro
critpath`` command: synthetic containment chains, the self-time
telescoping invariant, and reconciliation against the profiler's own
ledger on a real profiled run."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.obs.critpath import (
    critical_path,
    format_critical_path,
    reconcile_with_profile,
    spans_from_chrome,
)


def _doc(spans, names=None):
    """A minimal Chrome trace document. ``spans`` rows are
    (name, ts, dur, pid, tid); ``names`` maps pid -> process name."""
    events = []
    for pid, process in (names or {}).items():
        events.append({"name": "process_name", "ph": "M", "ts": 0,
                       "pid": pid, "tid": 1,
                       "args": {"name": process}})
    for name, ts, dur, pid, tid in spans:
        events.append({"name": name, "cat": "host", "ph": "X",
                       "ts": ts, "dur": dur, "pid": pid, "tid": tid})
    return {"traceEvents": events}


NESTED = _doc([
    ("run", 0.0, 100.0, 1, 1),
    ("phase.a", 0.0, 55.0, 1, 1),     # ends at 55
    ("phase.b", 60.0, 40.0, 1, 1),    # ends at 100: on the path
    ("phase.b.inner", 70.0, 20.0, 1, 1),
], names={1: "host"})


class TestCriticalPath:
    def test_latest_finisher_chain(self):
        path = critical_path(NESTED)
        assert [s.span.name for s in path.steps] == \
            ["run", "phase.b", "phase.b.inner"]

    def test_self_times_telescope_to_root_duration(self):
        path = critical_path(NESTED)
        assert [s.self_us for s in path.steps] == [60.0, 20.0, 20.0]
        assert sum(s.self_us for s in path.steps) == path.total_us
        assert path.total_us == 100.0

    def test_phase_totals_aggregate_by_name(self):
        doc = _doc([
            ("run", 0.0, 100.0, 1, 1),
            ("retry", 0.0, 50.0, 1, 1),
            ("retry", 50.0, 50.0, 1, 1),
            ("work", 60.0, 40.0, 1, 1),
        ])
        totals = critical_path(doc).phase_totals()
        # Both retry spans can land on the path; same-name steps fold.
        assert totals["run"] == 50.0
        assert totals["retry"] + totals["work"] == 50.0

    def test_root_name_selection(self):
        path = critical_path(NESTED, root_name="phase.b")
        assert path.root.name == "phase.b"
        assert path.total_us == 40.0
        assert critical_path(NESTED, root_name="nope") is None
        assert critical_path({"traceEvents": []}) is None

    def test_sibling_processes_do_not_join_the_path(self):
        # A span on another track that merely overlaps in time is
        # still a candidate only if *contained*; one that overhangs
        # the root is not.
        doc = _doc([
            ("run", 0.0, 100.0, 1, 1),
            ("straggler", 50.0, 100.0, 2, 1),  # ends at 150
        ], names={1: "host", 2: "shard0"})
        path = critical_path(doc, root_name="run")
        assert [s.span.name for s in path.steps] == ["run"]

    def test_spans_from_chrome_resolves_names(self):
        spans = spans_from_chrome(NESTED)
        assert {s.process for s in spans} == {"host"}
        assert len(spans) == 4

    def test_format_renders_and_elides(self):
        path = critical_path(NESTED)
        text = format_critical_path(path)
        assert "critical path: 0.100 ms" in text
        assert "phase.b.inner" in text
        limited = format_critical_path(path, limit=1)
        assert "phase.b.inner" not in limited
        assert "2 deeper step(s) elided" in limited


def _pairs(count, length=40, seed=13):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, 4, length, dtype=np.uint8),
             rng.integers(0, 4, length, dtype=np.uint8))
            for _ in range(count)]


@pytest.fixture(scope="module")
def profiled_run():
    from repro.config import dna_edit_config
    from repro.exec.engine import BatchConfig, BatchEngine
    from repro.obs import Observability

    ctx = Observability.enabled_context(profile=True)
    BatchEngine(dna_edit_config(), BatchConfig(),
                obs=ctx).run(_pairs(24))
    return ctx


class TestProfileReconciliation:
    def test_path_reaches_the_profile_thread(self, profiled_run):
        path = critical_path(profiled_run.tracer.to_chrome())
        assert any(s.span.thread == "profile" for s in path.steps)

    def test_reconciles_with_profiler_self_time(self, profiled_run):
        """ACCEPTANCE: the critical path's profile-span wall clock and
        the profiler's total self time are two views of the same
        single-threaded interval -- they must agree."""
        path = critical_path(profiled_run.tracer.to_chrome())
        profile_state = profiled_run.profiler.export_state()
        recon = reconcile_with_profile(path, profile_state)
        assert recon["phases"]  # the path carries named phases
        assert recon["path_profile_us"] > 0
        assert recon["profiler_total_us"] == pytest.approx(
            recon["path_profile_us"], rel=0.05)
        for row in recon["phases"]:
            # The profiler aggregates every call of a phase; one path
            # step can never exceed the phase's total span length.
            if row["profile_wall_s"] is None:
                continue
            assert row["path_self_s"] <= row["span_s"] + 1e-6


class TestCritpathCli:
    @pytest.fixture()
    def trace_file(self, tmp_path, profiled_run):
        path = tmp_path / "trace.json"
        profiled_run.tracer.write(str(path))
        return str(path)

    def test_renders_path_and_phase_table(self, trace_file, capsys):
        assert main(["critpath", trace_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("critical path:")
        assert "self time by phase:" in out

    def test_limit_elides(self, trace_file, capsys):
        assert main(["critpath", trace_file, "--limit", "1"]) == 0
        assert "elided" in capsys.readouterr().out

    def test_unknown_root_exits_2(self, trace_file, capsys):
        assert main(["critpath", trace_file, "--root", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope" in err

    def test_missing_file_exits_2(self, capsys):
        assert main(["critpath", "/nonexistent/trace.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["critpath", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_empty_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"traceEvents": []}))
        assert main(["critpath", str(path)]) == 2
        assert "no spans" in capsys.readouterr().err
