"""Tests for SMX-1D architectural state and CSR encodings."""

import pytest

from repro.config import standard_configs
from repro.core.registers import (
    MODE_MATCH_MISMATCH,
    MODE_SUBMAT,
    SmxConfig,
    SmxState,
)
from repro.errors import ConfigurationError, EncodingError
from repro.scoring.submat import blosum50


class TestSmxConfigEncoding:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    def test_roundtrip_through_csr(self, name):
        config = standard_configs()[name]
        smx = SmxConfig.from_alignment_config(config)
        assert SmxConfig.decode(smx.encode()) == smx

    def test_ew_select_bits(self):
        for ew, select in ((2, 0), (4, 1), (6, 2), (8, 3)):
            smx = SmxConfig(ew=ew, mode=0, match_sp=2, mismatch_sp=0,
                            gap_i=-1, gap_d=-1)
            assert smx.encode() & 0x3 == select

    def test_mode_bit(self):
        smx = SmxConfig(ew=6, mode=MODE_SUBMAT, match_sp=35, mismatch_sp=0,
                        gap_i=-10, gap_d=-10)
        assert (smx.encode() >> 2) & 1 == 1

    def test_negative_gaps_twos_complement(self):
        smx = SmxConfig(ew=2, mode=0, match_sp=2, mismatch_sp=1,
                        gap_i=-1, gap_d=-2)
        decoded = SmxConfig.decode(smx.encode())
        assert decoded.gap_i == -1 and decoded.gap_d == -2

    def test_invalid_ew_rejected(self):
        with pytest.raises(ConfigurationError):
            SmxConfig(ew=5, mode=0, match_sp=0, mismatch_sp=0, gap_i=0,
                      gap_d=0)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            SmxConfig(ew=2, mode=7, match_sp=0, mismatch_sp=0, gap_i=0,
                      gap_d=0)

    def test_vl_property(self):
        assert SmxConfig(ew=6, mode=0, match_sp=1, mismatch_sp=0,
                         gap_i=0, gap_d=0).vl == 10

    def test_shifted_scores_from_preset(self):
        """dna-gap: match 2, mismatch -4, gaps -2 -> S' of 6 and 0."""
        config = standard_configs()["dna-gap"]
        smx = SmxConfig.from_alignment_config(config)
        assert smx.match_sp == 6
        assert smx.mismatch_sp == 0
        assert smx.mode == MODE_MATCH_MISMATCH

    def test_protein_preset_uses_submat_mode(self):
        smx = SmxConfig.from_alignment_config(standard_configs()["protein"])
        assert smx.mode == MODE_SUBMAT
        assert smx.ew == 6


class TestSmxState:
    def make_state(self):
        return SmxState.for_config(standard_configs()["dna-edit"])

    def test_csr_read_write(self):
        state = self.make_state()
        state.csr_write("smx_query", 0xDEADBEEF)
        assert state.csr_read("smx_query") == 0xDEADBEEF

    def test_csr_write_masks_to_64bit(self):
        state = self.make_state()
        state.csr_write("smx_reference", 1 << 70)
        assert state.csr_read("smx_reference") == 0

    def test_config_csr_roundtrip(self):
        state = self.make_state()
        image = state.csr_read("smx_config")
        state.csr_write("smx_config", image)
        assert state.csr_read("smx_config") == image

    def test_unknown_csr(self):
        state = self.make_state()
        with pytest.raises(ConfigurationError, match="unknown CSR"):
            state.csr_write("smx_bogus", 0)
        with pytest.raises(ConfigurationError, match="unknown CSR"):
            state.csr_read("smx_bogus")

    def test_submat_initially_zero(self):
        state = self.make_state()
        assert len(state.submat) == 78
        assert not any(state.submat)


class TestSubmatLookup:
    def test_lookup_matches_matrix(self):
        config = standard_configs()["protein"]
        state = SmxState.for_config(config)
        matrix = blosum50()
        shift = 20  # -(gap_i + gap_d) with -10 gaps
        for ref, query in [(0, 0), (22, 22), (3, 13), (25, 0), (8, 19)]:
            expected = int(matrix.table[query, ref]) + shift
            assert state.submat_lookup(ref, query) == expected

    def test_lookup_symmetric(self):
        state = SmxState.for_config(standard_configs()["protein"])
        assert state.submat_lookup(2, 7) == state.submat_lookup(7, 2)

    def test_out_of_range_codes(self):
        state = SmxState.for_config(standard_configs()["protein"])
        with pytest.raises(EncodingError):
            state.submat_lookup(26, 0)
        with pytest.raises(EncodingError):
            state.submat_lookup(0, -1)
