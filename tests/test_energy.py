"""Tests for the energy model extension."""

import pytest

from repro.analysis.energy import (
    EnergyParams,
    efficiency_gain,
    energy_per_cell_pj,
    smx_component_power_mw,
    software_energy_per_cell_pj,
)
from repro.errors import ConfigurationError


class TestComponentPower:
    def test_total_matches_calibration(self):
        power = smx_component_power_mw(activity=0.20)
        assert power["total"] == pytest.approx(0.342)

    def test_components_sum_to_total(self):
        power = smx_component_power_mw(activity=0.5)
        parts = power["smx1d"] + power["engine"] + power["workers"] \
            + power["glue"]
        assert parts == pytest.approx(power["total"])

    def test_linear_in_activity(self):
        low = smx_component_power_mw(activity=0.1)["total"]
        high = smx_component_power_mw(activity=0.4)["total"]
        assert high == pytest.approx(4 * low)

    def test_activity_validation(self):
        with pytest.raises(ConfigurationError):
            smx_component_power_mw(activity=1.5)


class TestEnergyPerCell:
    def test_narrower_elements_cheaper(self):
        """More PEs per mm^2 -> less energy per cell at smaller EW."""
        costs = [energy_per_cell_pj(ew) for ew in (2, 4, 6, 8)]
        assert costs == sorted(costs)

    def test_scale_is_sub_picojoule(self):
        """1024 cells/cycle from ~1.5 mW active logic: femtojoules."""
        assert energy_per_cell_pj(2) < 0.01

    def test_utilization_dependence(self):
        busy = energy_per_cell_pj(2, utilization=1.0)
        idleish = energy_per_cell_pj(2, utilization=0.5)
        assert idleish == pytest.approx(2 * busy)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            energy_per_cell_pj(2, utilization=0)
        with pytest.raises(ConfigurationError):
            software_energy_per_cell_pj(0)


class TestEfficiencyGain:
    def test_orders_of_magnitude(self):
        """SMX-2D vs a big OoO core running SIMD: the throughput gap
        times the power gap gives a very large energy advantage."""
        gain = efficiency_gain(2)
        assert gain > 10_000

    def test_gain_shrinks_with_ew(self):
        gains = [efficiency_gain(ew) for ew in (2, 4, 6, 8)]
        assert gains == sorted(gains, reverse=True)

    def test_params_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyParams(calibration_activity=0)
