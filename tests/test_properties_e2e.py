"""End-to-end property-based tests over random configurations and pairs.

These are the library's strongest invariants, exercised with hypothesis:
every path from sequences to score -- gold DP, delta blocks, SMX-1D
instructions, tile-border traceback -- must agree exactly, for random
scoring models and random inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AlignmentConfig, standard_configs
from repro.core.isa import Smx1D, smx1d_block_score
from repro.core.registers import SmxState
from repro.core.system import SmxSystem
from repro.dp.dense import nw_score
from repro.encoding.alphabet import DNA, DNA4
from repro.scoring.model import MatchMismatchModel


@st.composite
def valid_gap_models(draw):
    """Random valid match/mismatch models that fit 4-bit elements.

    theta = match - gap_i - gap_d <= 4 + 3 + 3 = 10 < 16 by construction.
    """
    gap_i = draw(st.integers(-3, 0))
    gap_d = draw(st.integers(-3, 0))
    match = draw(st.integers(0, 4))
    mismatch = draw(st.integers(gap_i + gap_d, match))
    return MatchMismatchModel(match=match, mismatch=mismatch,
                              gap_i=gap_i, gap_d=gap_d)


class TestRandomModels:
    @settings(deadline=None, max_examples=30)
    @given(model=valid_gap_models(), seed=st.integers(0, 10_000),
           n=st.integers(1, 40), m=st.integers(1, 40))
    def test_system_matches_gold_for_any_model(self, model, seed, n, m):
        """The SMX dataflow is exact for *every* admissible gap model,
        not just the four presets."""
        config = AlignmentConfig(name="random", alphabet=DNA4, model=model,
                                 ew=4)
        system = SmxSystem(config)
        rng = np.random.default_rng(seed)
        q = DNA4.random(n, rng)
        r = DNA4.random(m, rng)
        expected = nw_score(q, r, model)
        assert system.score(q, r).score == expected
        result = system.align(q, r)
        assert result.score == expected
        result.alignment.validate(q, r, model)

    @settings(deadline=None, max_examples=15)
    @given(model=valid_gap_models(), seed=st.integers(0, 10_000))
    def test_isa_kernel_matches_gold_for_any_model(self, model, seed):
        config = AlignmentConfig(name="random", alphabet=DNA4, model=model,
                                 ew=4)
        unit = Smx1D(SmxState.for_config(config))
        rng = np.random.default_rng(seed)
        q = DNA4.random(20, rng)
        r = DNA4.random(25, rng)
        assert smx1d_block_score(unit, q, r) == nw_score(q, r, model)


class TestPresetInvariants:
    @settings(deadline=None, max_examples=20)
    @given(name=st.sampled_from(["dna-edit", "dna-gap", "protein",
                                 "ascii"]),
           seed=st.integers(0, 100_000), n=st.integers(1, 60),
           m=st.integers(1, 60))
    def test_score_path_equivalence(self, name, seed, n, m):
        config = standard_configs()[name]
        system = SmxSystem(config)
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        assert system.score(q, r).score == nw_score(q, r, config.model)

    @settings(deadline=None, max_examples=12)
    @given(name=st.sampled_from(["dna-edit", "protein"]),
           seed=st.integers(0, 100_000))
    def test_alignment_consumes_sequences(self, name, seed):
        config = standard_configs()[name]
        system = SmxSystem(config)
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(int(rng.integers(1, 80)), rng)
        r = config.alphabet.random(int(rng.integers(1, 80)), rng)
        alignment = system.align(q, r).alignment
        assert alignment.consumed() == (len(q), len(r))

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 100_000), n=st.integers(1, 50))
    def test_edit_score_symmetry(self, seed, n):
        """Edit distance is symmetric: score(q, r) == score(r, q)."""
        config = standard_configs()["dna-edit"]
        rng = np.random.default_rng(seed)
        q = DNA.random(n, rng)
        r = DNA.random(n, rng)
        assert (nw_score(q, r, config.model)
                == nw_score(r, q, config.model))

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 100_000), n=st.integers(2, 60),
           m=st.integers(2, 60))
    def test_triangle_style_bound(self, seed, n, m):
        """Edit distance >= |n - m| and <= max(n, m)."""
        config = standard_configs()["dna-edit"]
        rng = np.random.default_rng(seed)
        q = DNA.random(n, rng)
        r = DNA.random(m, rng)
        distance = -nw_score(q, r, config.model)
        assert abs(n - m) <= distance <= max(n, m)


class TestScaleSpotChecks:
    """Larger, non-hypothesis spot checks of the full dataflow."""

    @pytest.mark.parametrize("n,m", [(257, 123), (512, 512), (301, 999)])
    def test_medium_blocks(self, configs, n, m):
        config = configs["dna-edit"]
        system = SmxSystem(config)
        rng = np.random.default_rng(n * 1000 + m)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        result = system.align(q, r)
        assert result.score == nw_score(q, r, config.model)
