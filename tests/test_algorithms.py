"""Tests for the practical alignment-algorithm family (paper Sec. 2.3)."""

import numpy as np
import pytest

from repro.algorithms import (
    BandedAligner,
    FullAligner,
    HirschbergAligner,
    WindowAligner,
    XdropAligner,
    band_intervals,
)
from repro.errors import AlignmentError
from repro.workloads.synthetic import ONT_NANOPORE, mutate
from tests.conftest import make_pair


@pytest.fixture()
def gold():
    return FullAligner()


def similar_pair(config, n, rng, rate=0.05):
    return make_pair(config, n, rate, rng)


class TestFullAligner:
    def test_align_validates(self, config, rng, gold):
        q, r = similar_pair(config, 60, rng)
        result = gold.align(q, r, config.model)
        result.alignment.validate(q, r, config.model)
        assert result.score == result.alignment.score

    def test_score_matches_align(self, config, rng, gold):
        q, r = similar_pair(config, 60, rng)
        assert (gold.compute_score(q, r, config.model).score
                == gold.align(q, r, config.model).score)

    def test_stats_full_matrix(self, configs, rng, gold):
        config = configs["dna-edit"]
        q, r = make_pair(config, 30, 0.1, rng, m=40)
        result = gold.align(q, r, config.model)
        assert result.stats.cells_computed == 30 * 40
        assert result.stats.cells_stored == 30 * 40

    def test_score_mode_linear_memory(self, configs, rng, gold):
        config = configs["dna-edit"]
        q, r = make_pair(config, 30, 0.1, rng, m=40)
        result = gold.compute_score(q, r, config.model)
        assert result.stats.cells_stored == 41

    def test_exact_flag(self, gold):
        assert gold.exact


class TestBandedAligner:
    def test_exact_when_band_contains_path(self, config, rng, gold):
        q, r = similar_pair(config, 120, rng)
        banded = BandedAligner(fraction=0.25)
        result = banded.align(q, r, config.model)
        assert result.score == gold.align(q, r, config.model).score
        result.alignment.validate(q, r, config.model)

    def test_narrow_band_suboptimal_or_failed(self, configs, rng, gold):
        """A 1-cell band cannot follow a path with big gaps."""
        config = configs["dna-edit"]
        rng2 = np.random.default_rng(5)
        r = config.alphabet.random(100, rng2)
        # Delete a 30-char chunk: path leaves any narrow band.
        q = np.concatenate([r[:20], r[50:]])
        banded = BandedAligner(width=2)
        gold_score = gold.align(q, r, config.model).score
        result = banded.align(q, r, config.model)
        assert result.failed or result.score < gold_score

    def test_band_cells_fraction(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 300, 0.05, rng)
        result = BandedAligner(fraction=0.10).compute_score(q, r,
                                                            config.model)
        frac, _ = result.stats.fractions_of(len(q), len(r))
        assert 0.05 < frac < 0.35

    def test_width_and_fraction_exclusive(self):
        with pytest.raises(AlignmentError):
            BandedAligner()
        with pytest.raises(AlignmentError):
            BandedAligner(width=3, fraction=0.1)

    def test_band_intervals_connected(self):
        lo, hi = band_intervals(50, 200, width=4)
        assert lo[0] == 0 and hi[-1] == 200
        for i in range(1, len(lo)):
            assert lo[i] <= hi[i - 1] + 1  # corridor is connected

    def test_asymmetric_lengths(self, configs, rng, gold):
        config = configs["dna-gap"]
        q, r = make_pair(config, 40, 0.05, rng, m=120)
        result = BandedAligner(fraction=0.5).align(q, r, config.model)
        assert result.score == gold.align(q, r, config.model).score


class TestXdropAligner:
    def test_exact_on_similar_pairs(self, config, rng, gold):
        q, r = similar_pair(config, 150, rng)
        result = XdropAligner(fraction=0.08).align(q, r, config.model)
        assert result.score == gold.align(q, r, config.model).score

    def test_drops_dissimilar_pair(self, configs):
        """Unrelated sequences drop early (the pre-filter use case)."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(9)
        q = config.alphabet.random(400, rng)
        r = config.alphabet.random(400, rng)
        result = XdropAligner(xdrop=8).compute_score(q, r, config.model)
        assert result.failed

    def test_computes_fewer_cells(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 300, 0.05, rng)
        result = XdropAligner(fraction=0.08).compute_score(q, r,
                                                           config.model)
        frac, _ = result.stats.fractions_of(len(q), len(r))
        assert frac < 0.8

    def test_param_validation(self):
        with pytest.raises(AlignmentError):
            XdropAligner()
        with pytest.raises(AlignmentError):
            XdropAligner(xdrop=5, fraction=0.08)

    def test_alignment_validates(self, config, rng):
        q, r = similar_pair(config, 100, rng)
        result = XdropAligner(fraction=0.10).align(q, r, config.model)
        if not result.failed:
            result.alignment.validate(q, r, config.model)


class TestHirschbergAligner:
    def test_exact_score_all_configs(self, config, rng, gold):
        q, r = make_pair(config, 90, 0.15, rng, m=110)
        result = HirschbergAligner().align(q, r, config.model)
        assert result.score == gold.align(q, r, config.model).score
        result.alignment.validate(q, r, config.model)

    def test_roughly_double_work(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 400, 0.1, rng)
        result = HirschbergAligner(base_cells=256).align(q, r, config.model)
        frac, _ = result.stats.fractions_of(len(q), len(r))
        assert 1.2 < frac < 2.2  # paper Fig. 2: ~2x computed

    def test_linear_memory(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 400, 0.1, rng)
        result = HirschbergAligner(base_cells=256).align(q, r, config.model)
        _, stored = result.stats.fractions_of(len(q), len(r))
        assert stored < 0.02

    def test_empty_sequences(self, configs):
        config = configs["dna-edit"]
        empty = np.array([], dtype=np.uint8)
        r = config.alphabet.random(5, np.random.default_rng(0))
        result = HirschbergAligner().align(empty, r, config.model)
        assert result.alignment.cigar == [(5, "D")]
        result = HirschbergAligner().align(r, empty, config.model)
        assert result.alignment.cigar == [(5, "I")]

    def test_many_blocks_issued(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 300, 0.1, rng)
        result = HirschbergAligner(base_cells=64).align(q, r, config.model)
        assert result.stats.blocks > 10


class TestWindowAligner:
    def test_exact_on_clean_pairs(self, configs, rng, gold):
        config = configs["dna-edit"]
        q, r = make_pair(config, 500, 0.02, rng)
        result = WindowAligner(window=128, overlap=48).align(q, r,
                                                             config.model)
        assert not result.failed
        assert result.score == gold.align(q, r, config.model).score

    def test_fails_or_degrades_on_large_indels(self, configs, gold):
        """A gap larger than the window defeats the heuristic (the
        paper's zero-recall GACT result on ONT reads)."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(17)
        r = config.alphabet.random(600, rng)
        q = np.concatenate([r[:100], r[350:]])  # 250-char deletion
        result = WindowAligner(window=96, overlap=32).align(q, r,
                                                            config.model)
        gold_score = gold.align(q, r, config.model).score
        assert result.failed or result.score < gold_score

    def test_param_validation(self):
        with pytest.raises(AlignmentError, match="overlap"):
            WindowAligner(window=64, overlap=64)

    def test_constant_memory(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 800, 0.02, rng)
        result = WindowAligner(window=128, overlap=48).align(q, r,
                                                             config.model)
        assert result.stats.cells_stored <= 128 * 128

    def test_alignment_validates(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 400, 0.03, rng)
        result = WindowAligner(window=128, overlap=48).align(q, r,
                                                             config.model)
        if not result.failed:
            result.alignment.validate(q, r, config.model)

    def test_score_mode_same_as_align(self, configs, rng):
        """Window heuristic cannot skip traceback (paper Sec. 3)."""
        config = configs["dna-edit"]
        q, r = make_pair(config, 300, 0.02, rng)
        aligner = WindowAligner(window=96, overlap=32)
        assert (aligner.compute_score(q, r, config.model).score
                == aligner.align(q, r, config.model).score)


class TestCrossAlgorithmAgreement:
    def test_all_exact_algorithms_agree(self, config, rng):
        q, r = make_pair(config, 140, 0.10, rng, m=150)
        full = FullAligner().align(q, r, config.model)
        hirschberg = HirschbergAligner().align(q, r, config.model)
        wide_band = BandedAligner(fraction=0.5).align(q, r, config.model)
        assert full.score == hirschberg.score == wide_band.score

    def test_heuristics_never_beat_gold(self, configs, rng):
        config = configs["dna-edit"]
        rng2 = np.random.default_rng(33)
        r = config.alphabet.random(250, rng2)
        q, _ = mutate(r, ONT_NANOPORE, config.alphabet, rng2)
        gold_score = FullAligner().align(q, r, config.model).score
        for aligner in (BandedAligner(width=4), XdropAligner(xdrop=6),
                        WindowAligner(window=64, overlap=16)):
            result = aligner.align(q, r, config.model)
            if not result.failed:
                assert result.score <= gold_score
