"""Fleet telemetry end-to-end: tenant-labeled metrics through the
supervised engine and daemon, worker-digest bit-identity, queue-depth
gauges, alert emission, and the fleet snapshot."""

from __future__ import annotations

import copy
import json
import os

import numpy as np
import pytest

from repro import obs
from repro.config import standard_configs
from repro.exec.engine import BatchConfig
from repro.obs.anomaly import AnomalyDetector
from repro.obs.digest import LatencyDigest
from repro.obs import slo as obs_slo
from repro.obs.timeseries import TimeSeriesStore
from repro.resilience import ResilienceConfig, SupervisedEngine
from repro.service import AlignmentDaemon, JobSpec, JobSpool
from tests.conftest import make_pair


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def config():
    return standard_configs()["dna-gap"]


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def _pairs(config, rng, count=6, n=24):
    return [make_pair(config, n, 0.1, rng) for _ in range(count)]


class TestTenantLabeling:
    def test_engine_labels_parent_side_metrics(self, config, rng):
        ctx = obs.Observability.enabled_context()
        engine = SupervisedEngine(
            config, BatchConfig(workers=1),
            ResilienceConfig(backend="thread"), obs=ctx,
            tenant="acme")
        outcome = engine.run(_pairs(config, rng))
        assert not outcome.failures
        snapshot = ctx.metrics.snapshot()
        assert "resilience.batches{tenant=acme}" in snapshot
        # Thread-mode engine metrics flow through the labeled view too.
        assert any(key.startswith("exec.pairs{")
                   and "tenant=acme" in key for key in snapshot)

    def test_two_tenants_split_series(self, config, rng):
        ctx = obs.Observability.enabled_context()
        for tenant in ("acme", "zeno"):
            SupervisedEngine(
                config, BatchConfig(workers=1),
                ResilienceConfig(backend="thread"), obs=ctx,
                tenant=tenant).run(_pairs(config, rng))
        snapshot = ctx.metrics.snapshot()
        assert snapshot["resilience.batches{tenant=acme}"] == 1
        assert snapshot["resilience.batches{tenant=zeno}"] == 1

    def test_untenanted_engine_unchanged(self, config, rng):
        ctx = obs.Observability.enabled_context()
        SupervisedEngine(config, BatchConfig(workers=1),
                         ResilienceConfig(backend="thread"),
                         obs=ctx).run(_pairs(config, rng))
        assert "resilience.batches" in ctx.metrics.snapshot()


class TestWorkerDigestBitIdentity:
    def test_window_digest_matches_offline_union_of_worker_states(
            self, config, rng):
        """Acceptance: the per-tenant window digest the store seals is
        bit-identical to the offline union of that window's worker
        process digest states."""
        clock = FakeClock(50.0)
        store = TimeSeriesStore(interval_s=1.0, clock=clock)
        ctx = obs.Observability.enabled_context()
        store.tick(ctx.metrics)  # anchor the grid

        engine = SupervisedEngine(
            config, BatchConfig(workers=3),
            ResilienceConfig(backend="process", max_unit_pairs=4),
            obs=ctx, tenant="acme")
        captured: list[dict] = []
        inner_merge = engine.obs.merge_state

        def spy(state, extra_labels=None):
            if state:
                captured.append(copy.deepcopy(state))
            inner_merge(state, extra_labels=extra_labels)

        engine.obs.merge_state = spy
        outcome = engine.run(_pairs(config, rng, count=12))
        assert not outcome.failures
        assert len(captured) == 3  # one state per worker unit

        clock.t += 1.0
        [window] = store.tick(ctx.metrics)
        key = next(k for k in window.digests
                   if k.startswith("exec.pair_latency_us{")
                   and "tenant=acme" in k)

        offline = LatencyDigest()
        worker_key = key.replace(",tenant=acme", "").replace(
            "{tenant=acme", "{").replace("{}", "")
        for state in captured:
            dists = state["metrics"]["distributions"]
            offline.merge_state(dists[worker_key]["digest"])
        assert window.digests[key] == offline.export_state()
        assert offline.count == 12  # every pair accounted for


def _submit(spool, tenant, job_id, config_name="dna-gap", pairs=3):
    spool.submit(JobSpec(job_id=job_id,
                         pairs=[("ACGTACGT", "ACGTTCGT")] * pairs,
                         config=config_name, tenant=tenant,
                         priority=1))


class TestDaemonTelemetry:
    def test_two_tenant_run_produces_per_tenant_windows(self, tmp_path):
        clock = FakeClock(10.0)
        store = TimeSeriesStore(interval_s=1.0, clock=clock)
        spool = JobSpool(str(tmp_path / "spool"))
        stream = obs.events.open_jsonl(str(tmp_path / "events.jsonl"))
        ctx = obs.Observability.enabled_context(events=stream)
        daemon = AlignmentDaemon(
            spool, obs=ctx, telemetry=store,
            telemetry_path=str(tmp_path / "telemetry.json"),
            metrics_path=str(tmp_path / "metrics.prom"))
        for tenant in ("acme", "zeno"):
            for i in range(2):
                _submit(spool, tenant, f"{tenant}-{i}")
        daemon.recover()
        daemon.ingest()
        while daemon.run_next():
            clock.t += 1.0
            daemon.sample_telemetry()
        daemon.sample_telemetry(flush=True)
        stream.close()

        assert daemon.settled == 4
        windows = store.all_windows()
        assert windows
        for tenant in ("acme", "zeno"):
            key = f"service.job_latency_s{{tenant={tenant}}}"
            points = store.series(key, "p99", windows)
            assert points, f"no p99 series for {tenant}"
            stats = next(w.percentiles(key) for w in windows
                         if key in w.digests)
            assert stats["count"] >= 1
            assert stats["p50"] is not None
        # Persisted artifacts exist and the exposition lints clean.
        from repro.obs.export import lint_exposition
        text = open(tmp_path / "metrics.prom").read()
        assert lint_exposition(text) == []
        assert f'tenant="acme"' in text
        doc = json.load(open(tmp_path / "telemetry.json"))
        assert doc["schema"] == "smx-timeseries/1"

    def test_queue_depth_gauges_and_event(self, tmp_path):
        spool = JobSpool(str(tmp_path / "spool"))
        stream = obs.events.open_jsonl(str(tmp_path / "events.jsonl"))
        ctx = obs.Observability.enabled_context(events=stream)
        daemon = AlignmentDaemon(spool, obs=ctx)
        _submit(spool, "acme", "a-0")
        _submit(spool, "acme", "a-1")
        _submit(spool, "zeno", "z-0")
        daemon.ingest()
        snapshot = ctx.metrics.snapshot()
        assert snapshot["service.queue_depth"] == 3
        assert snapshot["service.queue_depth{tenant=acme}"] == 2
        assert snapshot["service.queue_depth{tenant=zeno}"] == 1
        queue_events = ctx.events.of_kind("queue")
        assert queue_events
        assert queue_events[-1]["tenants"] == {"acme": 2, "zeno": 1}
        while daemon.run_next():
            pass
        snapshot = ctx.metrics.snapshot()
        assert snapshot["service.queue_depth"] == 0
        assert snapshot["service.queue_depth{tenant=acme}"] == 0
        stream.close()

    def test_reingest_does_not_duplicate_admitted_jobs(self, tmp_path):
        spool = JobSpool(str(tmp_path / "spool"))
        ctx = obs.Observability.enabled_context()
        daemon = AlignmentDaemon(spool, obs=ctx)
        _submit(spool, "acme", "a-0")
        assert daemon.ingest() == 1
        assert daemon.ingest() == 0  # pending file still there: no dup
        assert len(daemon.picker) == 1

    def test_latency_step_raises_exactly_one_alert_event(self, tmp_path):
        """Acceptance: an injected latency step raises exactly one
        structured alert event, at a deterministic window index."""
        clock = FakeClock(0.0)
        store = TimeSeriesStore(interval_s=1.0, clock=clock)
        detector = AnomalyDetector(
            watch=(("service.job_latency_s", "p99"),), warmup=3)
        spool = JobSpool(str(tmp_path / "spool"))
        stream = obs.events.open_jsonl(str(tmp_path / "events.jsonl"))
        ctx = obs.Observability.enabled_context(events=stream)
        daemon = AlignmentDaemon(spool, obs=ctx, telemetry=store,
                                 detector=detector)
        daemon.sample_telemetry()  # anchors the grid at t=0
        latencies = [0.010] * 10 + [0.800] * 4
        for value in latencies:
            ctx.metrics.distribution("service.job_latency_s",
                                     tenant="acme").observe(value)
            clock.t += 1.0
            daemon.sample_telemetry()
        stream.close()
        alerts = ctx.events.of_kind("alert")
        assert len(alerts) == 1
        [alert] = alerts
        assert alert["window_index"] == 10
        assert alert["tenant"] == "acme"
        assert alert["field"] == "p99"
        assert alert["direction"] == "up"
        assert daemon.alerts == 1


class TestFleetSnapshot:
    def events(self):
        return [
            {"seq": 1, "t": 0.1, "kind": "job_done", "job_id": "a-0",
             "tenant": "acme", "elapsed_s": 0.2},
            {"seq": 2, "t": 0.2, "kind": "job_done", "job_id": "a-1",
             "tenant": "acme", "elapsed_s": 0.4},
            {"seq": 3, "t": 0.3, "kind": "job_failed", "job_id": "z-0",
             "tenant": "zeno", "reason": "ValueError"},
            {"seq": 4, "t": 0.4, "kind": "queue", "depth": 3,
             "tenants": {"acme": 1, "zeno": 2}},
            {"seq": 5, "t": 0.5, "kind": "alert",
             "series": "service.job_latency_s{tenant=acme}",
             "metric_kind": "digest", "field": "p99",
             "window_index": 4, "value": 0.9, "baseline": 0.2,
             "deviation": 9.0, "direction": "up", "tenant": "acme"},
        ]

    def test_snapshot_shape(self):
        snapshot = obs_slo.fleet_snapshot(self.events())
        assert set(snapshot["tenants"]) == {"acme", "zeno"}
        acme = snapshot["tenants"]["acme"]
        assert acme["jobs"] == {"done": 2, "failed": 0, "rejected": 0}
        assert acme["latency"]["count"] == 2
        assert acme["queue_depth"] == 1
        assert acme["alerts"] == 1
        zeno = snapshot["tenants"]["zeno"]
        assert zeno["jobs"]["failed"] == 1
        assert zeno["latency"] is None
        assert snapshot["queue_depth"] == 3
        assert snapshot["alerts"] == 1
        assert len(snapshot["recent_alerts"]) == 1
        # Per-tenant SLO reports evaluate each tenant's own slice.
        [report] = acme["slos"]
        assert report["status"] == "ok"
        [report] = zeno["slos"]
        assert report["status"] == "no-data"

    def test_snapshot_is_json_safe(self):
        json.dumps(obs_slo.fleet_snapshot(self.events()))

    def test_format_fleet_renders_tenants_and_alerts(self):
        text = obs_slo.format_fleet(
            obs_slo.fleet_snapshot(self.events()))
        assert "tenant acme" in text
        assert "tenant zeno" in text
        assert "alert  w4" in text
        assert "queue=3" in text

    def test_empty_stream(self):
        snapshot = obs_slo.fleet_snapshot([])
        assert snapshot["tenants"] == {}
        assert "no tenant activity" in obs_slo.format_fleet(snapshot)

    def test_monitor_renders_queue_and_alerts(self):
        snapshot = obs_slo.monitor_snapshot(self.events())
        assert snapshot["queue_depth"] == 3
        assert snapshot["alerts"] == 1
        text = obs_slo.format_monitor(snapshot)
        assert "queue    depth=3" in text
        assert "acme=1" in text
