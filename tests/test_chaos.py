"""Chaos suite: seeded fault injection against the supervised engine.

Every test follows the same contract, per fault class at a >= 10%
injection rate on a 256-pair batch (the acceptance bar of the
resilience layer):

* pairs the injector never touched return **bit-identical** results to
  a fault-free run of the plain engine;
* transient-poisoned pairs are retried to success (also bit-identical);
* persistent-poisoned pairs come back as typed
  :class:`~repro.resilience.PairFailure` records -- exactly the pairs
  the injector's ground-truth table says, no more and no fewer;
* the supervisor's fault counters reconcile with the injector's fired
  log, and the whole outcome is deterministic under a fixed seed.

The thread backend keeps the injection log in-process (shared plan), so
counter equality is exact there; the process-pool test asserts the
weaker (ground-truth-set) form since a worker killed by ``os._exit``
cannot ship its log home.

Run with ``pytest -m chaos``; the default suite keeps these out of the
hot path (they sleep on purpose in the hang tests).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import standard_configs
from repro.dp.dense import nw_score
from repro.errors import ConfigurationError
from repro.exec.engine import BatchConfig, BatchEngine
from repro.resilience import (
    ChaosPlan,
    ResilienceConfig,
    SupervisedEngine,
    chaos,
    parse_rates,
)
from tests.conftest import make_pair

pytestmark = pytest.mark.chaos

BATCH_SIZE = 256
RATE = 0.10


@pytest.fixture(scope="module")
def config():
    return standard_configs()["dna-gap"]


@pytest.fixture(scope="module")
def pairs(config):
    rng = np.random.default_rng(0x5EED)
    return [make_pair(config, 24 + int(rng.integers(0, 24)), 0.12, rng)
            for _ in range(BATCH_SIZE)]


@pytest.fixture(scope="module")
def baseline(config, pairs):
    """Fault-free reference results from the plain engine."""
    return BatchEngine(config, BatchConfig(traceback=True)).run(pairs)


def _policy(**overrides):
    base = dict(backend="thread", backoff_base_s=0.0, max_retries=2,
                validate=True)
    base.update(overrides)
    return ResilienceConfig(**base)


def _persistent(plan, pairs, cls):
    table = plan.ground_truth(pairs)
    return {i for i, entry in enumerate(table)
            if entry.get(cls) == "persistent"}


def _poisoned(plan, pairs, cls):
    table = plan.ground_truth(pairs)
    return {i for i, entry in enumerate(table) if cls in entry}


def _check_contract(outcome, baseline, plan, pairs, cls):
    """The shared acceptance contract for one single-class chaos run."""
    persistent = _persistent(plan, pairs, cls)
    poisoned = _poisoned(plan, pairs, cls)
    assert len(poisoned) >= int(RATE * len(pairs) * 0.5), \
        "seed produced too few poisoned pairs to be meaningful"
    # Every pair is accounted for, in submission order.
    assert outcome.completed() + len(outcome.failures) == len(pairs)
    # Exactly the persistent-poisoned pairs fail, all typed.
    assert {f.index for f in outcome.failures} == persistent
    for failure in outcome.failures:
        assert failure.fault == cls
        assert failure.attempts >= 1
    # Unaffected AND transient-recovered pairs are bit-identical.
    for i, (want, got) in enumerate(zip(baseline, outcome.results)):
        if i in persistent:
            assert got is None
            continue
        assert got is not None
        assert got.score == want.score, f"pair {i} score drifted"
        if want.alignment is not None:
            assert got.alignment.cigar == want.alignment.cigar
    # Supervisor accounting reconciles with the injector's fired log
    # (exact on the thread backend: the plan object is shared).
    fired = [event for event in outcome.injections if event.cls == cls]
    assert outcome.counters.get(f"faults.{cls}", 0) == len(fired)
    assert outcome.counters.get(f"quarantined.{cls}", 0) == \
        len(persistent)


class TestSingleClassChaos:
    def test_oserror(self, config, pairs, baseline):
        plan = ChaosPlan(seed=101, oserror=RATE)
        outcome = SupervisedEngine(config, BatchConfig(workers=8),
                                   _policy(), plan=plan).run(pairs)
        _check_contract(outcome, baseline, plan, pairs, "oserror")

    def test_crash(self, config, pairs, baseline):
        plan = ChaosPlan(seed=202, crash=RATE)
        outcome = SupervisedEngine(config, BatchConfig(workers=8),
                                   _policy(), plan=plan).run(pairs)
        _check_contract(outcome, baseline, plan, pairs, "crash")

    def test_rangeerror(self, config, pairs, baseline):
        plan = ChaosPlan(seed=303, rangeerror=RATE)
        outcome = SupervisedEngine(config, BatchConfig(workers=8),
                                   _policy(), plan=plan).run(pairs)
        _check_contract(outcome, baseline, plan, pairs, "rangeerror")
        # Persistent range errors walked the ladder before quarantine.
        for failure in outcome.failures:
            assert failure.rungs == ("wide-dtype", "scalar")
        assert outcome.counters.get("degraded.wide-dtype", 0) == \
            len(outcome.failures)

    def test_bitflip_traceback(self, config, pairs, baseline):
        plan = ChaosPlan(seed=404, bitflip=RATE)
        outcome = SupervisedEngine(config, BatchConfig(workers=8),
                                   _policy(), plan=plan).run(pairs)
        _check_contract(outcome, baseline, plan, pairs, "bitflip")
        for failure in outcome.failures:
            assert failure.error_type == "Validation"

    def test_hang(self, config, pairs, baseline):
        # The hang must exceed the sum of every staggered timeout wait
        # (not just one shard_timeout_s), or a late wave shard's
        # sleeping execution could finish before its turn to be waited
        # on and sneak its results in.
        plan = ChaosPlan(seed=505, hang=RATE, hang_s=2.0)
        outcome = SupervisedEngine(
            config, BatchConfig(workers=8),
            _policy(shard_timeout_s=0.05, max_retries=1),
            plan=plan).run(pairs)
        _check_contract(outcome, baseline, plan, pairs, "hang")
        for failure in outcome.failures:
            assert failure.error_type == "Timeout"


class TestBitflipScoreMode:
    def test_redundant_recompute_catches_flips(self, config, pairs):
        """Score-only batches have no CIGAR to rescore; validation
        falls back to a clean redundant recompute."""
        subset = pairs[:64]
        plan = ChaosPlan(seed=404, bitflip=2 * RATE)
        clean = [r.score for r in BatchEngine(
            config, BatchConfig(traceback=False)).run(subset)]
        outcome = SupervisedEngine(
            config, BatchConfig(traceback=False, workers=4),
            _policy(), plan=plan).run(subset)
        persistent = _persistent(plan, subset, "bitflip")
        assert {f.index for f in outcome.failures} == persistent
        for i, got in enumerate(outcome.results):
            if i not in persistent:
                assert got.score == clean[i]


class TestMixedChaos:
    def test_mixed_faults_all_pairs_accounted(self, config, pairs,
                                              baseline):
        plan = ChaosPlan(seed=77, crash=0.04, oserror=0.04,
                         bitflip=0.04, rangeerror=0.04)
        outcome = SupervisedEngine(config, BatchConfig(workers=8),
                                   _policy(), plan=plan).run(pairs)
        assert outcome.completed() + len(outcome.failures) == len(pairs)
        failed = {f.index for f in outcome.failures}
        # Everything that failed was genuinely poisoned with some
        # persistent class; everything untouched is bit-identical.
        table = plan.ground_truth(pairs)
        for failure in outcome.failures:
            assert "persistent" in table[failure.index].values()
        for i, (want, got) in enumerate(zip(baseline, outcome.results)):
            if i in failed:
                continue
            assert got.score == want.score
            assert got.alignment.cigar == want.alignment.cigar

    def test_determinism_under_fixed_seed(self, config, pairs):
        def run():
            plan = ChaosPlan(seed=77, crash=0.04, oserror=0.04,
                             bitflip=0.04, rangeerror=0.04)
            outcome = SupervisedEngine(
                config, BatchConfig(workers=8), _policy(),
                plan=plan).run(pairs)
            scores = [None if r is None else r.score
                      for r in outcome.results]
            failures = [(f.index, f.fault, f.rungs)
                        for f in outcome.failures]
            events = sorted((e.cls, e.digest, e.attempt, e.persistent)
                            for e in outcome.injections)
            return scores, failures, outcome.counters, events

        assert run() == run()


class TestProcessPoolChaos:
    def test_crash_kills_real_workers(self, config, pairs, baseline):
        """os._exit in a pool worker surfaces as BrokenProcessPool and
        still converges to exactly the persistent-poisoned pairs."""
        subset = pairs[:48]
        plan = ChaosPlan(seed=202, crash=RATE)
        outcome = SupervisedEngine(
            config, BatchConfig(workers=4),
            ResilienceConfig(backend="process", backoff_base_s=0.0,
                             max_retries=1),
            plan=plan).run(subset)
        persistent = _persistent(plan, subset, "crash")
        assert {f.index for f in outcome.failures} == persistent
        for failure in outcome.failures:
            assert failure.fault == "crash"
        for i, got in enumerate(outcome.results):
            if i not in persistent:
                assert got is not None
                assert got.score == baseline[i].score


class TestSmxModelBitflip:
    def test_border_store_corruption_hook(self, configs):
        """The SMX functional-model hook flips exactly one stored
        border bit for a poisoned pair, and the recomputed traceback
        can never *beat* the true optimum with it."""
        from repro.core.traceback import (
            compute_tile_borders,
            traceback_with_recompute,
        )
        config = configs["dna-edit"]
        rng = np.random.default_rng(8)
        q, r = make_pair(config, 96, 0.1, rng)
        truth = nw_score(q, r, config.model)
        clean = compute_tile_borders(q, r, config.model, config.vl)
        plan = ChaosPlan(seed=1, bitflip=1.0, persistent_fraction=1.0)
        with chaos.scoped(plan):
            store = compute_tile_borders(q, r, config.model, config.vl)
        assert len(plan.fired) == 1 and plan.fired[0].cls == "bitflip"
        deltas = [int(np.abs(a - b).sum())
                  for strips in zip(clean.dvp_cols, store.dvp_cols)
                  for a, b in zip(*strips)]
        assert sum(x > 0 for x in deltas) == 1  # exactly one border hit
        try:
            alignment, _ = traceback_with_recompute(store, q, r,
                                                    config.model)
        except Exception:
            return  # detected by construction: traceback rejected it
        assert alignment.score <= truth

    def test_hook_is_a_noop_without_a_plan(self, configs):
        from repro.core.traceback import compute_tile_borders
        config = configs["dna-edit"]
        rng = np.random.default_rng(8)
        q, r = make_pair(config, 64, 0.1, rng)
        a = compute_tile_borders(q, r, config.model, config.vl)
        b = compute_tile_borders(q, r, config.model, config.vl)
        for row_a, row_b in zip(a.dhp_rows, b.dhp_rows):
            assert np.array_equal(row_a, row_b)


class TestChaosPlanUnit:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(crash=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPlan(persistent_fraction=-0.1)
        with pytest.raises(ConfigurationError):
            ChaosPlan(hang_s=0.0)

    def test_parse_rates(self):
        plan = parse_rates("crash=0.05, bitflip=0.1", seed=9)
        assert plan.seed == 9
        assert plan.crash == 0.05 and plan.bitflip == 0.1
        with pytest.raises(ConfigurationError):
            parse_rates("meteor=0.5")
        with pytest.raises(ConfigurationError):
            parse_rates("crash=lots")

    def test_transient_fires_only_on_attempt_zero(self):
        plan = ChaosPlan(seed=0, oserror=1.0, persistent_fraction=0.0)
        digest = ChaosPlan.pair_digest(np.zeros(4, np.uint8),
                                       np.ones(4, np.uint8))
        assert plan.fires("oserror", digest, attempt=0)
        assert not plan.fires("oserror", digest, attempt=1)
        persistent = ChaosPlan(seed=0, oserror=1.0,
                               persistent_fraction=1.0)
        assert persistent.fires("oserror", digest, attempt=3)

    def test_digest_is_content_based(self):
        q = np.array([1, 2, 3], np.uint8)
        r = np.array([3, 2, 1], np.uint8)
        assert ChaosPlan.pair_digest(q, r) == \
            ChaosPlan.pair_digest(q.copy(), r.copy())
        assert ChaosPlan.pair_digest(q, r) != ChaosPlan.pair_digest(r, q)

    def test_plan_pickles_without_lock_or_log(self):
        import pickle
        plan = ChaosPlan(seed=4, crash=0.2)
        plan._record("crash", 123, 0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.crash == 0.2 and clone.seed == 4
        assert clone.fired == []  # workers start an empty log
        clone._record("crash", 5, 1)  # fresh lock works
        assert plan.spec() == clone.spec()

    def test_scoped_activation_is_isolated(self):
        plan = ChaosPlan(seed=1)
        assert not chaos.is_active()
        with chaos.scoped(plan):
            assert chaos.active() is plan
            with chaos.suppressed():
                assert not chaos.is_active()
            assert chaos.active() is plan
        assert not chaos.is_active()


class TestChaosCli:
    def test_cli_chaos_partial_results(self, tmp_path, capsys):
        from repro.__main__ import main
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\nACGTACGT ACGTACGA\n"
                         "TTTTAAAA TTTTAAAC\n")
        code = main(["align", "--batch", str(batch),
                     "--chaos", "oserror=1.0", "--chaos-seed", "1",
                     "--max-retries", "1"])
        out = capsys.readouterr()
        lines = [line for line in out.out.splitlines() if line]
        assert len(lines) == 3
        assert any(line.startswith("FAIL\toserror:") for line in lines)
        assert code == 3
        assert "failed" in out.err

    def test_cli_chaos_report_counters(self, tmp_path, capsys):
        import json

        from repro.__main__ import main
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\nACGT ACGA\n")
        report_path = tmp_path / "report.json"
        code = main(["align", "--batch", str(batch), "--resilient",
                     "--metrics-json", str(report_path)])
        assert code == 0
        capsys.readouterr()
        report = json.loads(report_path.read_text())
        assert report["params"]["resilient"] is True
        assert report["resilience"]["failures"] == []
