"""Tests for local (Smith-Waterman) and semi-global alignment modes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.local import LocalAligner, SemiGlobalAligner
from repro.config import dna_gap_config, protein_config
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import edit_model


def local_brute_force(q, r, model):
    n, m = len(q), len(r)
    h = [[0] * (m + 1) for _ in range(n + 1)]
    best = 0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            h[i][j] = max(0,
                          h[i - 1][j - 1]
                          + model.substitution(int(q[i - 1]),
                                               int(r[j - 1])),
                          h[i - 1][j] + model.gap_i,
                          h[i][j - 1] + model.gap_d)
            best = max(best, h[i][j])
    return best


def semiglobal_brute_force(q, r, model):
    n, m = len(q), len(r)
    h = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(1, n + 1):
        h[i][0] = i * model.gap_i
        for j in range(1, m + 1):
            h[i][j] = max(h[i - 1][j - 1]
                          + model.substitution(int(q[i - 1]),
                                               int(r[j - 1])),
                          h[i - 1][j] + model.gap_i,
                          h[i][j - 1] + model.gap_d)
    return max(h[n])


class TestLocalAligner:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 9999), n=st.integers(1, 30),
           m=st.integers(1, 30))
    def test_score_matches_oracle(self, seed, n, m):
        config = dna_gap_config()
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        expected = local_brute_force(q, r, config.model)
        got = LocalAligner().compute_score(q, r, config.model).score
        assert got == expected

    def test_finds_embedded_motif(self):
        config = dna_gap_config()
        rng = np.random.default_rng(4)
        motif = config.alphabet.random(40, rng)
        q = np.concatenate([config.alphabet.random(30, rng), motif,
                            config.alphabet.random(25, rng)])
        r = np.concatenate([config.alphabet.random(50, rng), motif,
                            config.alphabet.random(10, rng)])
        result = LocalAligner().align(q, r, config.model)
        meta = result.alignment.meta
        assert result.score >= 40 * config.model.match
        assert meta["query_end"] - meta["query_start"] >= 40
        # The located window must actually contain the motif positions.
        assert meta["query_start"] <= 30 <= 30 + 40 <= meta["query_end"]

    def test_cigar_covers_region_only(self):
        config = dna_gap_config()
        rng = np.random.default_rng(8)
        q = config.alphabet.random(60, rng)
        result = LocalAligner().align(q, q, config.model)
        consumed_q, consumed_r = result.alignment.consumed()
        meta = result.alignment.meta
        assert consumed_q == meta["query_end"] - meta["query_start"]
        assert consumed_r == meta["ref_end"] - meta["ref_start"]

    def test_local_score_at_least_global(self):
        config = dna_gap_config()
        rng = np.random.default_rng(15)
        q = config.alphabet.random(50, rng)
        r = config.alphabet.random(50, rng)
        from repro.dp.dense import nw_score
        local = LocalAligner().compute_score(q, r, config.model).score
        assert local >= max(0, nw_score(q, r, config.model))

    def test_unrelated_sequences_near_zero_region(self):
        config = dna_gap_config()
        rng = np.random.default_rng(23)
        q = config.alphabet.random(100, rng)
        r = config.alphabet.random(100, rng)
        result = LocalAligner().align(q, r, config.model)
        assert result.alignment.query_len < 60  # short best region

    def test_edit_model_rejected(self):
        with pytest.raises(ConfigurationError, match="positive match"):
            LocalAligner().compute_score(np.array([0], dtype=np.uint8),
                                         np.array([0], dtype=np.uint8),
                                         edit_model())

    def test_protein_local(self):
        config = protein_config()
        rng = np.random.default_rng(31)
        q = config.alphabet.random(40, rng)
        r = config.alphabet.random(40, rng)
        expected = local_brute_force(q, r, config.model)
        assert LocalAligner().compute_score(q, r,
                                            config.model).score == expected

    def test_max_cells_guard(self):
        config = dna_gap_config()
        rng = np.random.default_rng(1)
        q = config.alphabet.random(50, rng)
        with pytest.raises(AlignmentError, match="max_cells"):
            LocalAligner(max_cells=100).compute_score(q, q, config.model)


class TestSemiGlobalAligner:
    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 9999), n=st.integers(1, 25),
           m=st.integers(1, 35))
    def test_score_matches_oracle(self, seed, n, m):
        config = dna_gap_config()
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        expected = semiglobal_brute_force(q, r, config.model)
        got = SemiGlobalAligner().compute_score(q, r, config.model).score
        assert got == expected

    def test_maps_read_into_reference(self):
        """A read embedded in a longer reference maps with full score."""
        config = dna_gap_config()
        rng = np.random.default_rng(6)
        read = config.alphabet.random(50, rng)
        reference = np.concatenate([config.alphabet.random(100, rng), read,
                                    config.alphabet.random(80, rng)])
        result = SemiGlobalAligner().align(read, reference, config.model)
        assert result.score == 50 * config.model.match
        assert result.alignment.meta["ref_start"] == 100 or \
            result.score == 50 * config.model.match

    def test_consumes_whole_query(self):
        config = dna_gap_config()
        rng = np.random.default_rng(19)
        q = config.alphabet.random(30, rng)
        r = config.alphabet.random(90, rng)
        result = SemiGlobalAligner().align(q, r, config.model)
        consumed_q, _ = result.alignment.consumed()
        assert consumed_q == 30

    def test_at_least_global_score(self):
        config = dna_gap_config()
        rng = np.random.default_rng(27)
        q = config.alphabet.random(40, rng)
        r = config.alphabet.random(60, rng)
        from repro.dp.dense import nw_score
        semi = SemiGlobalAligner().compute_score(q, r, config.model).score
        assert semi >= nw_score(q, r, config.model)

    def test_works_with_edit_model(self):
        """Unlike local mode, semiglobal is meaningful for edit scores."""
        model = edit_model()
        rng = np.random.default_rng(2)
        from repro.encoding.alphabet import DNA
        read = DNA.random(20, rng)
        reference = np.concatenate([DNA.random(30, rng), read,
                                    DNA.random(30, rng)])
        result = SemiGlobalAligner().align(read, reference, model)
        assert result.score == 0  # embedded exactly -> zero edits
