"""Tests for the SMX differential encoding (paper Eq. 3-6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.dense import nw_matrix
from repro.encoding.differential import (
    DeltaShift,
    deltas_to_matrix,
    matrix_to_deltas,
    raw_step,
    score_from_borders,
    score_from_shifted_borders,
    shifted_step,
    shifted_step_vec,
)
from repro.errors import RangeError
from repro.scoring.model import dna_gap_model, edit_model
from tests.conftest import make_pair


class TestStepEquivalence:
    """The shifted recurrence is the raw recurrence after the linear
    transformation dv' = dv - I, dh' = dh - D, S' = S - I - D."""

    @given(dv=st.integers(-1, 4), dh=st.integers(-1, 4),
           s=st.integers(-4, 2))
    def test_shift_commutes_with_step(self, dv, dh, s):
        gap_i, gap_d = -1, -1
        raw_dv, raw_dh = raw_step(dv, dh, s, gap_i, gap_d)
        sp = s - gap_i - gap_d
        dvp, dhp = shifted_step(dv - gap_i, dh - gap_d, sp)
        assert dvp == raw_dv - gap_i
        assert dhp == raw_dh - gap_d

    @given(dvp=st.integers(0, 6), dhp=st.integers(0, 6),
           sp=st.integers(0, 6))
    def test_shifted_stays_in_range(self, dvp, dhp, sp):
        """Eq. 5-6 outputs never exceed max(inputs) -- the theta bound."""
        out_v, out_h = shifted_step(dvp, dhp, sp)
        bound = max(dvp, dhp, sp)
        assert 0 <= out_v <= bound
        assert 0 <= out_h <= bound

    def test_vectorized_matches_scalar(self, rng):
        dvp = rng.integers(0, 7, 50)
        dhp = rng.integers(0, 7, 50)
        sp = rng.integers(0, 7, 50)
        vec_v, vec_h = shifted_step_vec(dvp, dhp, sp)
        for k in range(50):
            sv, sh = shifted_step(int(dvp[k]), int(dhp[k]), int(sp[k]))
            assert vec_v[k] == sv and vec_h[k] == sh

    def test_mutual_diagonal_selection(self):
        """Paper Sec. 4.1: if the diagonal term wins one equation it
        wins the other (control-logic reuse)."""
        for sp in range(7):
            for dvp in range(7):
                for dhp in range(7):
                    out_v, out_h = shifted_step(dvp, dhp, sp)
                    diag_v = out_v == sp - dhp and sp - dhp >= max(
                        dvp - dhp, 0)
                    diag_h = out_h == sp - dvp and sp - dvp >= max(
                        dhp - dvp, 0)
                    if sp >= dvp and sp >= dhp:
                        assert diag_v and diag_h


class TestMatrixConversions:
    def test_roundtrip(self, configs, rng):
        config = configs["dna-gap"]
        q, r = make_pair(config, 40, 0.2, rng)
        matrix = nw_matrix(q, r, config.model)
        dv, dh = matrix_to_deltas(matrix)
        assert np.array_equal(deltas_to_matrix(dv, dh), matrix)

    def test_delta_shapes(self):
        matrix = np.zeros((5, 9), dtype=np.int64)
        dv, dh = matrix_to_deltas(matrix)
        assert dv.shape == (4, 9)
        assert dh.shape == (5, 8)

    def test_redundant_dh_consistency(self, configs, rng):
        """dh is derivable from dv + first row; the DP must keep them
        consistent everywhere."""
        config = configs["dna-edit"]
        q, r = make_pair(config, 30, 0.3, rng)
        matrix = nw_matrix(q, r, config.model)
        dv, dh = matrix_to_deltas(matrix)
        rebuilt = deltas_to_matrix(dv, dh)
        dv2, dh2 = matrix_to_deltas(rebuilt)
        assert np.array_equal(dh, dh2)

    def test_origin_offset(self):
        matrix = np.arange(12, dtype=np.int64).reshape(3, 4) + 100
        dv, dh = matrix_to_deltas(matrix)
        assert deltas_to_matrix(dv, dh, origin=100)[0, 0] == 100


class TestDeltaShift:
    def test_for_model(self):
        shift = DeltaShift.for_model(dna_gap_model())
        assert shift.gap_i == -2 and shift.gap_d == -2 and shift.theta == 6

    def test_shift_roundtrip(self):
        shift = DeltaShift.for_model(edit_model())
        assert shift.unshift_v(shift.shift_v(-1)) == -1
        assert shift.unshift_h(shift.shift_h(0)) == 0

    def test_check_range_accepts_valid(self):
        shift = DeltaShift(gap_i=-1, gap_d=-1, theta=2)
        shift.check_range(np.array([0, 1, 2]), np.array([2, 0]))

    def test_check_range_rejects_negative(self):
        shift = DeltaShift(gap_i=-1, gap_d=-1, theta=2)
        with pytest.raises(RangeError, match="out of"):
            shift.check_range(np.array([-1]), np.array([0]))

    def test_check_range_rejects_above_theta(self):
        shift = DeltaShift(gap_i=-1, gap_d=-1, theta=2)
        with pytest.raises(RangeError, match="out of"):
            shift.check_range(np.array([0]), np.array([3]))

    def test_check_range_empty_ok(self):
        shift = DeltaShift(gap_i=-1, gap_d=-1, theta=2)
        shift.check_range(np.array([]), np.array([]))


class TestScoreReconstruction:
    """The smx.redsum path: M[n][m] from the top-row dh and right-col dv."""

    @settings(deadline=None, max_examples=25)
    @given(n=st.integers(1, 40), m=st.integers(1, 40),
           seed=st.integers(0, 999))
    def test_borders_reconstruct_final_score(self, configs, n, m, seed):
        config = configs["dna-edit"]
        rng = np.random.default_rng(seed)
        q, r = make_pair(config, n, 0.2, rng, m=m)
        matrix = nw_matrix(q, r, config.model)
        dv, dh = matrix_to_deltas(matrix)
        score = score_from_borders(dh[0, :], dv[:, -1])
        assert score == matrix[-1, -1]

    def test_shifted_borders_reconstruct(self, configs, rng):
        config = configs["protein"]
        q, r = make_pair(config, 33, 0.3, rng)
        matrix = nw_matrix(q, r, config.model)
        dv, dh = matrix_to_deltas(matrix)
        shift = DeltaShift.for_model(config.model)
        score = score_from_shifted_borders(shift.shift_h(dh[0, :]),
                                           shift.shift_v(dv[:, -1]), shift)
        assert score == matrix[-1, -1]

    def test_empty_borders(self):
        assert score_from_borders(np.array([]), np.array([]), origin=5) == 5
