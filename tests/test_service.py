"""Service layer: protocol, spool, admission, fair pick, daemon.

The contracts under test, by layer:

* **protocol** -- ``smx-job/1`` rejects every malformed shape with one
  actionable ``ValueError``; well-formed jobs round-trip exactly.
* **spool** -- all transitions are atomic renames: a lease race has
  exactly one winner; a killed daemon's job is visible as an orphan.
* **admission** -- jobs whose predicted cost cannot meet their
  declared deadline are rejected *before any shard starts*, with a
  structured record carrying the prediction; queue-depth and backlog
  caps likewise reject at the boundary, never mid-run.
* **fair pick** -- the stride scheduler serves tenants in proportion
  to priority and never starves a lane.
* **daemon** -- an enqueued job's settled outcome is bit-identical to
  running the supervised engine directly; a daemon SIGKILL'd mid-job
  (chaos ``kill_at_unit``) auto-resumes on restart to the same
  document; ``job_rejected`` events are exactly-once and reconcile
  with the rejected records and the ``service.jobs`` counter.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.config import standard_configs
from repro.exec.engine import BatchConfig
from repro.obs.prof import CostModel
from repro.resilience import (
    ChaosPlan,
    InjectedKill,
    ResilienceConfig,
    SupervisedEngine,
    outcome_io,
)
from repro.service import (
    AdmissionController,
    AdmissionPolicy,
    AlignmentDaemon,
    FairPicker,
    JobRejected,
    JobSpec,
    JobSpool,
    protocol,
)

#: Pessimistic pricing: ~1 s per DP cell makes any deadline hopeless.
SLOW = CostModel(seconds_per_cell=1.0)
#: Optimistic pricing: everything looks free.
FAST = CostModel(seconds_per_cell=1e-12)


def _job(job_id="job-1", n_pairs=3, length=8, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    alphabet = np.array(list("ACGT"))
    pairs = [("".join(rng.choice(alphabet, length)),
              "".join(rng.choice(alphabet, length)))
             for _ in range(n_pairs)]
    return JobSpec(job_id=job_id, pairs=pairs, **kwargs)


@pytest.fixture()
def spool(tmp_path):
    return JobSpool(str(tmp_path / "spool"))


@pytest.fixture()
def ctx():
    return obs.Observability.enabled_context(events=obs.EventStream())


class TestProtocol:
    def test_roundtrip(self):
        job = _job(tenant="alice", priority=3, deadline_s=9.5,
                   workers=2, engine="scalar")
        again = protocol.job_from_dict(protocol.job_to_dict(job))
        assert again == job

    def test_dump_load_file(self, tmp_path):
        job = _job()
        path = str(tmp_path / "job.json")
        protocol.dump_job(path, job)
        assert protocol.load_job(path) == job

    @pytest.mark.parametrize("mutation,needle", [
        ({"schema": "smx-job/2"}, "schema"),
        ({"job_id": ""}, "job_id"),
        ({"pairs": []}, "pairs"),
        ({"pairs": [["ACGT"]]}, "pairs[0]"),
        ({"pairs": [["ACGT", ""]]}, "pairs[0]"),
        ({"engine": "quantum"}, "engine"),
        ({"priority": 0}, "priority"),
        ({"deadline_s": -1}, "deadline_s"),
        ({"workers": 0}, "workers"),
    ])
    def test_malformed_rejected(self, mutation, needle):
        document = protocol.job_to_dict(_job())
        document.update(mutation)
        with pytest.raises(ValueError, match=needle.replace("[", "\\[")):
            protocol.job_from_dict(document)

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            protocol.load_job(str(path))

    def test_new_job_ids_unique(self):
        ids = {protocol.new_job_id() for _ in range(64)}
        assert len(ids) == 64


class TestSpool:
    def test_submit_then_lease(self, spool):
        spool.submit(_job("job-a"))
        pending = spool.pending_jobs()
        assert [os.path.basename(p) for p in pending] == ["job-a.json"]
        running = spool.lease(pending[0])
        assert running and "/running/" in running
        assert spool.pending_jobs() == []
        assert spool.orphaned() == [running]

    def test_lease_race_single_winner(self, spool):
        spool.submit(_job("job-a"))
        [pending] = spool.pending_jobs()
        first = spool.lease(pending)
        second = spool.lease(pending)
        assert first is not None and second is None

    def test_complete_moves_checkpoint_and_job(self, spool):
        spool.submit(_job("job-a"))
        running = spool.lease(spool.pending_jobs()[0])
        outcome_io.write(spool.checkpoint_path("job-a"),
                         {"schema": outcome_io.SCHEMA, "pairs": 0})
        spool.complete(running, "job-a")
        assert spool.orphaned() == []
        assert os.path.exists(spool.outcome_path("job-a"))

    def test_orphans_exclude_checkpoints(self, spool):
        spool.submit(_job("job-a"))
        running = spool.lease(spool.pending_jobs()[0])
        outcome_io.write(spool.checkpoint_path("job-a"),
                         {"schema": outcome_io.SCHEMA, "pairs": 0})
        assert spool.orphaned() == [running]

    def test_depth_counts_pending_only(self, spool):
        for i in range(3):
            spool.submit(_job(f"job-{i}"))
        assert spool.depth() == 3
        spool.lease(spool.pending_jobs()[0])
        assert spool.depth() == 2


class TestAdmission:
    def test_accepts_within_budget(self):
        controller = AdmissionController(cost_model=FAST)
        job = _job(deadline_s=10.0)
        assert controller.decide(job, queue_depth=0,
                                 backlog_s=0.0) is None

    def test_rejects_hopeless_deadline(self):
        controller = AdmissionController(cost_model=SLOW)
        verdict = controller.decide(_job(deadline_s=1.0),
                                    queue_depth=0, backlog_s=0.0)
        assert isinstance(verdict, JobRejected)
        assert verdict.reason == "deadline"
        assert verdict.predicted_s > 1.0

    def test_backlog_counts_against_deadline(self):
        controller = AdmissionController(cost_model=FAST)
        verdict = controller.decide(_job(deadline_s=5.0),
                                    queue_depth=1, backlog_s=100.0)
        assert verdict is not None and verdict.reason == "deadline"

    def test_safety_factor_is_pessimistic(self):
        lax = AdmissionController(AdmissionPolicy(safety=1.0),
                                  cost_model=FAST)
        strict = AdmissionController(AdmissionPolicy(safety=1000.0),
                                     cost_model=FAST)
        job = _job(deadline_s=1.0)
        assert lax.decide(job, queue_depth=0, backlog_s=0.9) is None
        verdict = strict.decide(job, queue_depth=0, backlog_s=0.9)
        assert verdict is not None and verdict.reason == "deadline"

    def test_rejects_on_queue_depth(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_depth=2), cost_model=FAST)
        verdict = controller.decide(_job(), queue_depth=2,
                                    backlog_s=0.0)
        assert verdict is not None and verdict.reason == "queue-full"

    def test_rejects_on_backlog_cap(self):
        controller = AdmissionController(
            AdmissionPolicy(max_backlog_s=0.5), cost_model=SLOW)
        verdict = controller.decide(_job(), queue_depth=0,
                                    backlog_s=0.4)
        assert verdict is not None and verdict.reason == "backlog"

    def test_no_deadline_always_fits_time(self):
        controller = AdmissionController(cost_model=SLOW)
        assert controller.decide(_job(), queue_depth=0,
                                 backlog_s=1e9) is None


class TestFairPicker:
    def test_fifo_within_one_tenant(self):
        picker = FairPicker()
        for item in "abc":
            picker.add("t", 1, item)
        assert [picker.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_priority_proportional_service(self):
        picker = FairPicker()
        for i in range(30):
            picker.add("heavy", 3, f"h{i}")
            picker.add("light", 1, f"l{i}")
        served = [picker.pop()[0] for _ in range(20)]
        assert served.count("heavy") == 15
        assert served.count("light") == 5

    def test_burst_cannot_starve_quiet_tenant(self):
        picker = FairPicker()
        for i in range(100):
            picker.add("burst", 1, f"b{i}")
        for _ in range(10):
            picker.pop()
        picker.add("quiet", 1, "q0")  # joins at current virtual time
        served = [picker.pop()[0] for _ in range(3)]
        assert "quiet" in served

    def test_empty_pop_returns_none(self):
        assert FairPicker().pop() is None
        picker = FairPicker()
        picker.add("t", 1, "a")
        picker.pop()
        assert picker.pop() is None


def _daemon(spool, ctx, **kwargs):
    kwargs.setdefault("max_unit_pairs", 2)
    kwargs.setdefault("cost_model", FAST)
    return AlignmentDaemon(spool, obs=ctx, **kwargs)


def _reference_document(job):
    config = standard_configs()[job.config]
    encoded = [(config.encode(q), config.encode(r))
               for q, r in job.pairs]
    outcome = SupervisedEngine(
        config, BatchConfig(engine=job.engine, workers=job.workers),
        ResilienceConfig(max_unit_pairs=2)).run(encoded)
    return outcome_io.to_document(outcome, pairs=len(encoded))


class TestDaemon:
    def test_outcome_matches_direct_engine(self, spool, ctx):
        job = _job("job-a", n_pairs=5)
        spool.submit(job)
        settled = _daemon(spool, ctx).serve(max_jobs=1,
                                            idle_exit_s=0.05,
                                            poll_s=0.01)
        assert settled == 1
        final = outcome_io.load_document(spool.outcome_path("job-a"))
        reference = _reference_document(job)
        for key in ("results", "failures", "counters", "degraded",
                    "completed"):
            assert final[key] == reference[key], key
        assert [e["kind"] for e in ctx.events.events
                if e["kind"].startswith("job_")] == \
            ["job_pending", "job_start", "job_done"]

    def test_rejection_exactly_once_reconciles(self, spool, ctx):
        spool.submit(_job("job-ok", deadline_s=None))
        spool.submit(_job("job-late", deadline_s=0.001))
        daemon = _daemon(spool, ctx, cost_model=SLOW)
        daemon.serve(max_jobs=1, idle_exit_s=0.05, poll_s=0.01)
        rejected_events = ctx.events.of_kind("job_rejected")
        assert len(rejected_events) == 1
        [event] = rejected_events
        assert event["job_id"] == "job-late"
        assert event["reason"] == "deadline"
        assert event["predicted_s"] > 0.001
        done = os.listdir(os.path.join(spool.root, "done"))
        assert "job-late.rejected.json" in done
        assert "job-late.outcome.json" not in done
        # The rejected job never started a shard: the only job_start
        # (and hence every shard_start) belongs to the accepted job.
        starts = ctx.events.of_kind("job_start")
        assert [e["job_id"] for e in starts] == ["job-ok"]
        shard_starts = ctx.events.of_kind("shard_start")
        assert shard_starts, "accepted job should have run shards"
        snapshot = ctx.metrics.snapshot()
        rejected_counter = sum(
            value for key, value in snapshot.items()
            if key.startswith("service.jobs")
            and "rejected" in key)
        assert rejected_counter == 1

    def test_bad_config_rejected_at_admission(self, spool, ctx):
        job = _job("job-bad")
        document = protocol.job_to_dict(job)
        document["config"] = "no-such-config"
        spool.submit(job)  # placeholder write, then corrupt it
        from repro.core.atomicio import atomic_write_json
        atomic_write_json(spool.pending_jobs()[0], document,
                          sort_keys=True)
        daemon = _daemon(spool, ctx)
        daemon.serve(max_jobs=1, idle_exit_s=0.05, poll_s=0.01)
        [event] = ctx.events.of_kind("job_rejected")
        assert event["reason"] == "bad-config"
        assert ctx.events.of_kind("job_start") == []

    def test_malformed_job_file_settles_daemon_continues(self, spool,
                                                         ctx):
        pending_dir = os.path.join(spool.root, "pending")
        with open(os.path.join(pending_dir, "job-junk.json"), "w",
                  encoding="utf-8") as handle:
            handle.write("{truncated")
        spool.submit(_job("job-good"))
        daemon = _daemon(spool, ctx)
        daemon.serve(max_jobs=1, idle_exit_s=0.05, poll_s=0.01)
        done = os.listdir(os.path.join(spool.root, "done"))
        assert "job-junk.rejected.json" in done
        assert "job-good.outcome.json" in done

    def test_weighted_fair_service_order(self, spool, ctx):
        for i in range(2):
            spool.submit(_job(f"job-h{i}", tenant="heavy", priority=2,
                              seed=i))
            spool.submit(_job(f"job-l{i}", tenant="light", priority=1,
                              seed=10 + i))
        daemon = _daemon(spool, ctx)
        daemon.serve(max_jobs=4, idle_exit_s=0.2, poll_s=0.01)
        starts = [e["tenant"] for e in ctx.events.of_kind("job_start")]
        # Stride order: heavy, light, heavy (pass 1.0), light.
        assert starts == ["heavy", "light", "heavy", "light"]

    def test_kill_mid_job_then_restart_resumes_bit_identical(
            self, spool, ctx):
        job = _job("job-a", n_pairs=8, length=10)
        spool.submit(job)
        killer = _daemon(spool, ctx,
                         plan=ChaosPlan(kill_at_unit=2))
        with pytest.raises(InjectedKill):
            killer.serve(max_jobs=1, idle_exit_s=0.05, poll_s=0.01)
        # The job is stranded in running/ with a partial checkpoint.
        assert spool.orphaned() != []
        partial = outcome_io.load(spool.checkpoint_path("job-a"))
        assert not partial.complete
        assert 0 < partial.outcome.completed() < len(job.pairs)

        ctx2 = obs.Observability.enabled_context(
            events=obs.EventStream())
        survivor = _daemon(spool, ctx2)
        settled = survivor.serve(max_jobs=1, idle_exit_s=0.05,
                                 poll_s=0.01)
        assert settled == 1
        [start] = ctx2.events.of_kind("job_start")
        assert start["resumed"] is True
        final = outcome_io.load_document(spool.outcome_path("job-a"))
        reference = _reference_document(job)
        for key in ("results", "failures", "counters", "degraded"):
            assert final[key] == reference[key], key

    def test_recover_reprices_backlog(self, spool, ctx):
        spool.submit(_job("job-a"))
        spool.lease(spool.pending_jobs()[0])
        daemon = _daemon(spool, ctx)
        assert daemon.recover() == ["job-a"]
        assert len(daemon.picker) == 1
        [event] = ctx.events.of_kind("job_pending")
        assert event["recovered"] is True
