"""Tests for the Fig. 8a-style dataflow renderer."""

import numpy as np
import pytest

from repro.config import dna_edit_config, dna_gap_config
from repro.core.visualize import (
    GLYPH_PATH,
    dataflow_stats,
    render_block_dataflow,
)
from repro.errors import ConfigurationError
from tests.conftest import make_pair


class TestRenderer:
    @pytest.fixture(scope="class")
    def rendered(self):
        config = dna_edit_config()
        rng = np.random.default_rng(2)
        q, r = make_pair(config, 80, 0.06, rng, m=80)
        return config, q, r, render_block_dataflow(config, q, r)

    def test_grid_dimensions(self, rendered):
        config, q, r, text = rendered
        lines = text.splitlines()
        assert len(lines) == 2 + len(q)
        assert all(len(line) == len(r) for line in lines[2:])

    def test_path_spans_block(self, rendered):
        _, q, r, text = rendered
        lines = text.splitlines()[2:]
        # The path must reach the last row and the last column.
        assert GLYPH_PATH in lines[-1]
        assert any(line[-1] == GLYPH_PATH for line in lines)

    def test_stats_account_for_every_cell(self, rendered):
        _, q, r, text = rendered
        stats = dataflow_stats(text)
        assert sum(stats.values()) == len(q) * len(r)
        assert stats["path"] > 0
        assert stats["idle"] > 0

    def test_off_path_tiles_untouched(self, rendered):
        """A near-diagonal path leaves far corners idle (the whole
        point of border-only storage, Fig. 8a)."""
        _, q, r, text = rendered
        stats = dataflow_stats(text)
        assert stats["idle"] > 0.3 * len(q) * len(r)

    def test_score_in_header(self, rendered):
        _, _, _, text = rendered
        assert "score" in text.splitlines()[0]

    def test_size_cap(self):
        config = dna_gap_config()
        rng = np.random.default_rng(1)
        q = config.alphabet.random(200, rng)
        with pytest.raises(ConfigurationError, match="max_cells"):
            render_block_dataflow(config, q, q)

    def test_other_config(self):
        config = dna_gap_config()
        rng = np.random.default_rng(5)
        q, r = make_pair(config, 40, 0.1, rng)
        text = render_block_dataflow(config, q, r)
        assert dataflow_stats(text)["path"] >= min(len(q), len(r))
