"""Shared fixtures: configurations, RNGs, and realistic sequence pairs."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings as hypothesis_settings

from repro.config import standard_configs
from repro.workloads.synthetic import ErrorProfile, mutate

# CI runs with HYPOTHESIS_PROFILE=ci for fully reproducible examples:
# derandomize replays a fixed corpus instead of fresh random draws, so
# a red build always reproduces locally with the same profile.
hypothesis_settings.register_profile("ci", derandomize=True,
                                     deadline=None)
hypothesis_settings.load_profile(
    os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def configs():
    """The four paper configurations, keyed by name."""
    return standard_configs()


@pytest.fixture(params=["dna-edit", "dna-gap", "protein", "ascii"])
def config(request, configs):
    """Parametrized fixture running a test under every configuration."""
    return configs[request.param]


@pytest.fixture()
def rng():
    return np.random.default_rng(0xC0FFEE)


def make_pair(config, n: int, error_rate: float, rng,
              m: int | None = None):
    """A (query, reference) pair with the requested similarity."""
    length = m if m is not None else n
    r_codes = config.alphabet.random(length, rng)
    profile = ErrorProfile(substitution=0.5 * error_rate,
                           insertion=0.25 * error_rate,
                           deletion=0.25 * error_rate)
    q_codes, _ = mutate(r_codes, profile, config.alphabet, rng)
    if m is not None and n != m:
        # Force specific lengths when asked (trim / pad with random).
        if len(q_codes) > n:
            q_codes = q_codes[:n]
        elif len(q_codes) < n:
            pad = config.alphabet.random(n - len(q_codes), rng)
            q_codes = np.concatenate([q_codes, pad])
    return q_codes, r_codes
