"""Tests for narrow-element word packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.encoding.packing import (
    ELEMENT_WIDTHS,
    LANES,
    element_mask,
    lanes_for,
    memory_bytes,
    pack_sequence,
    pack_word,
    unpack_sequence,
    unpack_word,
)
from repro.errors import EncodingError


class TestLanes:
    @pytest.mark.parametrize("ew,expected", [(2, 32), (4, 16), (6, 10),
                                             (8, 8)])
    def test_paper_vector_lengths(self, ew, expected):
        """Paper Sec. 4: a 64-bit register holds 32/16/10/8 elements."""
        assert lanes_for(ew) == expected

    def test_unsupported_width(self):
        with pytest.raises(EncodingError, match="unsupported element width"):
            lanes_for(3)

    @pytest.mark.parametrize("ew", ELEMENT_WIDTHS)
    def test_lanes_fit_in_word(self, ew):
        assert lanes_for(ew) * ew <= 64

    @pytest.mark.parametrize("ew,mask", [(2, 3), (4, 15), (6, 63), (8, 255)])
    def test_element_mask(self, ew, mask):
        assert element_mask(ew) == mask


class TestPackWord:
    @pytest.mark.parametrize("ew", ELEMENT_WIDTHS)
    def test_roundtrip_full_vector(self, ew, rng):
        values = rng.integers(0, element_mask(ew) + 1,
                              size=lanes_for(ew)).tolist()
        assert unpack_word(pack_word(values, ew), ew) == values

    def test_lane_zero_is_lsb(self):
        word = pack_word([1, 0, 0], 2)
        assert word == 1

    def test_lane_order(self):
        word = pack_word([0, 3], 2)
        assert word == 0b1100

    def test_value_too_large(self):
        with pytest.raises(EncodingError, match="does not fit"):
            pack_word([4], 2)

    def test_negative_value(self):
        with pytest.raises(EncodingError, match="does not fit"):
            pack_word([-1], 4)

    def test_too_many_values(self):
        with pytest.raises(EncodingError, match="exceed VL"):
            pack_word([0] * 33, 2)

    def test_partial_vector_zero_padded(self):
        word = pack_word([3, 3], 2)
        assert unpack_word(word, 2) == [3, 3] + [0] * 30

    def test_unpack_count_limit(self):
        with pytest.raises(EncodingError, match="cannot unpack"):
            unpack_word(0, 8, count=9)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_unpack_pack_identity_ew8(self, word):
        assert pack_word(unpack_word(word, 8), 8) == word

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=0,
                    max_size=10))
    def test_pack_unpack_identity_ew6(self, values):
        word = pack_word(values, 6)
        assert unpack_word(word, 6, count=len(values)) == values


class TestPackSequence:
    @pytest.mark.parametrize("ew", ELEMENT_WIDTHS)
    @pytest.mark.parametrize("length", [0, 1, 7, 32, 33, 100])
    def test_roundtrip(self, ew, length, rng):
        codes = rng.integers(0, min(4, element_mask(ew) + 1), size=length,
                             ).astype(np.uint8)
        words = pack_sequence(codes, ew)
        assert np.array_equal(unpack_sequence(words, ew, length), codes)

    def test_word_count(self):
        assert len(pack_sequence(np.zeros(65, dtype=np.uint8), 2)) == 3

    def test_unpack_insufficient_words(self):
        with pytest.raises(EncodingError, match="cannot hold"):
            unpack_sequence([0], 2, 64)


class TestMemoryBytes:
    def test_exact_word(self):
        assert memory_bytes(32, 2) == 8

    def test_rounds_up(self):
        assert memory_bytes(33, 2) == 16

    def test_footprint_ratio_vs_32bit(self):
        """Paper Sec. 4: 2-bit packing cuts memory 16x vs 32-bit ints
        (the paper quotes 2-8x against already-optimized 8-bit layouts)."""
        n = 1 << 20
        assert (n * 4) / memory_bytes(n, 2) == 16.0
        assert (n * 1) / memory_bytes(n, 8) == 1.0
