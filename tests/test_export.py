"""Prometheus exposition: render -> parse round trip, escaping,
linting, textfile atomicity, and the localhost scrape endpoint."""

import math
import os
import urllib.request

import pytest

from repro.obs.export import (
    MetricsServer,
    lint_exposition,
    metric_name,
    parse_exposition,
    render_registry,
    write_textfile,
)
from repro.obs.metrics import MetricsRegistry


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("service.jobs", verdict="done",
                     tenant="acme").inc(12)
    registry.counter("service.jobs", verdict="failed",
                     tenant="zeno").inc(1)
    registry.gauge("service.queue_depth", tenant="acme").set(3)
    for value in (10.0, 20.0, 500.0):
        registry.distribution("service.job_latency_s",
                              tenant="acme").observe(value)
    return registry


class TestRender:
    def test_names_flatten_under_namespace(self):
        assert metric_name("service.queue_depth") == \
            "smx_service_queue_depth"
        assert metric_name("service.jobs", "_total") == \
            "smx_service_jobs_total"
        assert metric_name("weird-name.1x") == "smx_weird_name_1x"

    def test_counters_render_cumulative_with_total_suffix(self):
        text = render_registry(populated_registry())
        assert ('smx_service_jobs_total{tenant="acme",'
                'verdict="done"} 12') in text
        assert "# TYPE smx_service_jobs_total counter" in text

    def test_distributions_render_as_summaries(self):
        text = render_registry(populated_registry())
        assert "# TYPE smx_service_job_latency_s summary" in text
        assert 'quantile="0.5"' in text
        assert "smx_service_job_latency_s_sum" in text
        assert "smx_service_job_latency_s_count" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", tag='a"b\\c\nd').inc()
        text = render_registry(registry)
        assert r'tag="a\"b\\c\nd"' in text
        page = parse_exposition(text)
        [(_, labels, _)] = page["samples"]
        assert labels["tag"] == 'a"b\\c\nd'

    def test_empty_registry_renders_empty_page(self):
        assert render_registry(MetricsRegistry()) == ""


class TestRoundTrip:
    def test_parse_recovers_every_sample(self):
        registry = populated_registry()
        text = render_registry(registry)
        page = parse_exposition(text)
        samples = {(name, tuple(sorted(labels.items()))): value
                   for name, labels, value in page["samples"]}
        assert samples[("smx_service_jobs_total",
                        (("tenant", "acme"),
                         ("verdict", "done")))] == 12.0
        assert samples[("smx_service_queue_depth",
                        (("tenant", "acme"),))] == 3.0
        assert samples[("smx_service_job_latency_s_count",
                        (("tenant", "acme"),))] == 3.0
        assert page["types"]["smx_service_jobs_total"] == "counter"
        assert page["types"]["smx_service_job_latency_s"] == "summary"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_exposition("!! not a metric line")
        with pytest.raises(ValueError):
            parse_exposition('m{unterminated="x} 1')

    def test_special_values(self):
        page = parse_exposition("# TYPE g gauge\ng +Inf\n")
        assert page["samples"][0][2] == math.inf


class TestLint:
    def test_clean_page_has_no_problems(self):
        assert lint_exposition(render_registry(populated_registry())) \
            == []

    def test_missing_type_line_flagged(self):
        problems = lint_exposition("smx_thing_total 3\n")
        assert any("no # TYPE" in p for p in problems)

    def test_counter_without_total_suffix_flagged(self):
        text = ("# TYPE smx_bad counter\n"
                "smx_bad 3\n")
        problems = lint_exposition(text)
        assert any("_total" in p for p in problems)

    def test_negative_counter_flagged(self):
        text = ("# TYPE smx_bad_total counter\n"
                "smx_bad_total -1\n")
        assert any("negative" in p for p in lint_exposition(text))

    def test_duplicate_sample_flagged(self):
        text = ("# TYPE smx_x gauge\n"
                "smx_x 1\n"
                "smx_x 2\n")
        assert any("duplicate" in p for p in lint_exposition(text))

    def test_counter_monotonicity_across_scrapes(self):
        registry = populated_registry()
        before = render_registry(registry)
        registry.counter("service.jobs", verdict="done",
                         tenant="acme").inc(5)
        after = render_registry(registry)
        assert lint_exposition(after, previous=before) == []
        regressed = lint_exposition(before, previous=after)
        assert any("backwards" in p for p in regressed)


class TestTextfileAndServer:
    def test_textfile_written_atomically(self, tmp_path):
        path = str(tmp_path / "nested" / "metrics.prom")
        write_textfile(path, populated_registry())
        text = open(path, encoding="utf-8").read()
        assert lint_exposition(text) == []
        assert not [name for name in os.listdir(tmp_path / "nested")
                    if name != "metrics.prom"]

    def test_scrape_endpoint(self):
        registry = populated_registry()
        server = MetricsServer(lambda: render_registry(registry),
                               port=0)
        try:
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith(
                    "text/plain")
                body = resp.read().decode("utf-8")
            assert lint_exposition(body) == []
            # A second scrape reflects counter movement, monotonically.
            registry.counter("service.jobs", verdict="done",
                             tenant="acme").inc()
            with urllib.request.urlopen(server.url, timeout=5) as resp:
                second = resp.read().decode("utf-8")
            assert lint_exposition(second, previous=body) == []
            bad = urllib.request.Request(
                server.url.replace("/metrics", "/nope"))
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(bad, timeout=5)
        finally:
            server.close()
