"""Anomaly detection: deterministic EWMA/MAD alerting over windows."""

import pytest

from repro.obs.anomaly import Alert, AnomalyDetector, SeriesDetector
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesStore


class TestSeriesDetector:
    def test_flat_series_never_alerts(self):
        detector = SeriesDetector()
        for _ in range(100):
            alerted, _, _ = detector.observe(5.0)
            assert not alerted

    def test_small_jitter_never_alerts(self):
        detector = SeriesDetector()
        values = [10.0, 10.2, 9.9, 10.1, 9.8, 10.0, 10.3, 9.7] * 5
        assert not any(detector.observe(v)[0] for v in values)

    def test_level_step_alerts_exactly_once(self):
        detector = SeriesDetector(warmup=3)
        series = [10.0] * 10 + [100.0] * 10
        alerts = [i for i, v in enumerate(series)
                  if detector.observe(v)[0]]
        # One alert, at the exact index where the step lands.
        assert alerts == [10]

    def test_warmup_suppresses_early_alerts(self):
        detector = SeriesDetector(warmup=5)
        assert not detector.observe(1.0)[0]
        assert not detector.observe(1000.0)[0]  # inside warmup

    def test_deterministic_replay(self):
        series = [10.0, 11.0, 9.0, 10.5, 10.0, 55.0, 54.0, 56.0, 10.0]
        runs = []
        for _ in range(3):
            detector = SeriesDetector(warmup=3)
            runs.append([detector.observe(v) for v in series])
        assert runs[0] == runs[1] == runs[2]

    def test_direction_and_deviation_reported(self):
        detector = SeriesDetector(warmup=3)
        for _ in range(6):
            detector.observe(10.0)
        alerted, baseline, deviation = detector.observe(0.1)
        assert alerted
        assert baseline == pytest.approx(10.0)
        assert deviation > detector.threshold

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            SeriesDetector(alpha=0.0)
        with pytest.raises(ValueError):
            SeriesDetector(threshold=0.0)
        with pytest.raises(ValueError):
            SeriesDetector(warmup=1)


def windows_from(latencies_per_window, clock, store, registry,
                 key="exec.latency_us", tenant="acme"):
    """Seal one window per entry of ``latencies_per_window``."""
    sealed = []
    for samples in latencies_per_window:
        for value in samples:
            registry.distribution(key, tenant=tenant).observe(value)
        clock.t += 1.0
        sealed.extend(store.tick(registry))
    return sealed


class TestAnomalyDetector:
    def make(self, **kwargs):
        clock = type("C", (), {"t": 0.0})()
        store = TimeSeriesStore(interval_s=1.0,
                                clock=lambda: clock.t)
        registry = MetricsRegistry()
        store.tick(registry)  # anchor epoch
        return clock, store, registry

    def test_latency_step_alerts_once_at_deterministic_window(self):
        clock, store, registry = self.make()
        quiet = [[10.0, 11.0, 9.5, 10.2]] * 10
        loud = [[100.0, 110.0, 95.0, 102.0]] * 5
        detector = AnomalyDetector(watch=(("exec.latency_us", "p99"),),
                                   warmup=3)
        alerts = detector.ingest(
            windows_from(quiet + loud, clock, store, registry))
        assert len(alerts) == 1
        [alert] = alerts
        assert alert.window_index == 10
        assert alert.series == "exec.latency_us{tenant=acme}"
        assert alert.metric_field == "p99"
        assert alert.direction == "up"
        assert alert.tenant == "acme"

    def test_replay_is_deterministic(self):
        results = []
        for _ in range(2):
            clock, store, registry = self.make()
            windows = windows_from([[10.0]] * 8 + [[400.0]] * 3,
                                   clock, store, registry)
            detector = AnomalyDetector(
                watch=(("exec.latency_us", "p99"),), warmup=3)
            results.append([a.to_dict() for a in
                            detector.ingest(windows)])
        assert results[0] == results[1]
        assert len(results[0]) == 1

    def test_counter_rate_watch(self):
        clock, store, registry = self.make()
        windows = []
        for count in [2] * 8 + [80] * 2:
            registry.counter("resilience.faults",
                             fault="crash").inc(count)
            clock.t += 1.0
            windows.extend(store.tick(registry))
        detector = AnomalyDetector(
            watch=(("resilience.faults", "rate"),), warmup=3)
        alerts = detector.ingest(windows)
        assert len(alerts) == 1
        assert alerts[0].kind == "counter"
        assert alerts[0].window_index == 8

    def test_gauge_watch(self):
        clock, store, registry = self.make()
        windows = []
        for depth in [3] * 8 + [60] * 2:
            registry.gauge("service.queue_depth",
                           tenant="acme").set(depth)
            # Gauges are sampled even without counter movement.
            registry.counter("keepalive").inc()
            clock.t += 1.0
            windows.extend(store.tick(registry))
        detector = AnomalyDetector(
            watch=(("service.queue_depth", "gauge"),), warmup=3)
        alerts = detector.ingest(windows)
        assert len(alerts) == 1
        assert alerts[0].kind == "gauge"

    def test_unwatched_series_ignored(self):
        clock, store, registry = self.make()
        windows = windows_from([[10.0]] * 8 + [[900.0]] * 2,
                               clock, store, registry)
        detector = AnomalyDetector(watch=(("other.metric", "p99"),))
        assert detector.ingest(windows) == []

    def test_alert_dict_shape(self):
        alert = Alert(series="m{tenant=a}", kind="digest",
                      metric_field="p99", window_index=7, value=9.0,
                      baseline=1.0, deviation=12.0, direction="up",
                      tenant="a")
        doc = alert.to_dict()
        assert doc["metric_kind"] == "digest"
        assert "kind" not in doc  # reserved for the event envelope
        assert doc["window_index"] == 7
        assert doc["tenant"] == "a"
