"""Tests for the alignment-configuration presets."""

import pytest

from repro.config import (
    AlignmentConfig,
    ascii_config,
    dna_edit_config,
    dna_gap_config,
    protein_config,
    standard_configs,
)
from repro.encoding.alphabet import DNA, PROTEIN
from repro.errors import ConfigurationError
from repro.scoring.model import MatchMismatchModel, edit_model


class TestPresets:
    def test_four_standard_configs(self):
        configs = standard_configs()
        assert set(configs) == {"dna-edit", "dna-gap", "protein", "ascii"}

    @pytest.mark.parametrize("factory,ew,vl", [
        (dna_edit_config, 2, 32),
        (dna_gap_config, 4, 16),
        (protein_config, 6, 10),
        (ascii_config, 8, 8),
    ])
    def test_paper_ew_vl_pairs(self, factory, ew, vl):
        config = factory()
        assert config.ew == ew
        assert config.vl == vl
        assert config.tile_dim == vl

    def test_theta_fits_element_width(self):
        for config in standard_configs().values():
            assert config.model.theta <= (1 << config.ew) - 1

    def test_protein_uses_submat(self):
        assert protein_config().uses_submat
        assert not dna_edit_config().uses_submat

    def test_encode_shortcut(self):
        config = dna_edit_config()
        assert list(config.encode("ACGT")) == [0, 1, 2, 3]

    def test_dna_gap_parameterizable(self):
        config = dna_gap_config(match=1, mismatch=-2, gap=-1)
        assert config.model.theta == 3

    def test_protein_gap_parameterizable(self):
        config = protein_config(gap=-12)
        assert config.model.theta == 39  # the paper's worst-case example


class TestValidation:
    def test_alphabet_wider_than_ew_rejected(self):
        with pytest.raises(ConfigurationError, match="needs"):
            AlignmentConfig(name="bad", alphabet=PROTEIN,
                            model=edit_model(), ew=4)

    def test_theta_wider_than_ew_rejected(self):
        model = MatchMismatchModel(match=10, mismatch=-10, gap_i=-10,
                                   gap_d=-10)
        with pytest.raises(ConfigurationError, match="theta"):
            AlignmentConfig(name="bad", alphabet=DNA, model=model, ew=2)

    def test_invalid_ew_rejected(self):
        with pytest.raises(Exception):
            AlignmentConfig(name="bad", alphabet=DNA, model=edit_model(),
                            ew=5)

    def test_shift_derived(self):
        config = dna_gap_config()
        assert config.shift.theta == config.model.theta
        assert config.shift.gap_i == config.model.gap_i
