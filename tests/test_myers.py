"""Tests for the Myers bit-parallel edit-distance baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.myers import (
    WORD_BITS,
    myers_edit_distance,
    myers_timing,
    myers_working_set,
)
from repro.dp.dense import nw_score
from repro.encoding.alphabet import ASCII, DNA
from repro.errors import AlignmentError
from repro.scoring.model import edit_model
from repro.sim.cpu import CoreModel


class TestCorrectness:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 100_000), n=st.integers(0, 150),
           m=st.integers(0, 150))
    def test_matches_gold_dp(self, seed, n, m):
        rng = np.random.default_rng(seed)
        q = DNA.random(n, rng)
        r = DNA.random(m, rng)
        assert myers_edit_distance(q, r) == -nw_score(q, r, edit_model())

    def test_multi_block_boundary_lengths(self):
        """Pattern lengths straddling the 64-bit word boundary."""
        model = edit_model()
        rng = np.random.default_rng(7)
        r = DNA.random(200, rng)
        for n in (63, 64, 65, 127, 128, 129, 192):
            q = DNA.random(n, rng)
            assert myers_edit_distance(q, r) == -nw_score(q, r, model)

    def test_identity_is_zero(self):
        rng = np.random.default_rng(1)
        q = DNA.random(500, rng)
        assert myers_edit_distance(q, q) == 0

    def test_empty_sequences(self):
        empty = np.array([], dtype=np.uint8)
        q = DNA.random(10, np.random.default_rng(0))
        assert myers_edit_distance(empty, q) == 10
        assert myers_edit_distance(q, empty) == 10
        assert myers_edit_distance(empty, empty) == 0

    def test_ascii_alphabet(self):
        a = ASCII.encode("kitten")
        b = ASCII.encode("sitting")
        assert myers_edit_distance(a, b, n_symbols=256) == 3

    def test_alphabet_size_enforced(self):
        with pytest.raises(AlignmentError, match="alphabet size"):
            myers_edit_distance(np.array([9], dtype=np.uint8),
                                np.array([0], dtype=np.uint8))

    def test_symmetry(self):
        rng = np.random.default_rng(13)
        q = DNA.random(80, rng)
        r = DNA.random(90, rng)
        assert myers_edit_distance(q, r) == myers_edit_distance(r, q)


class TestTiming:
    def test_beats_simd_on_edit_model(self):
        """Bit-parallelism should outrun plain SIMD on edit distance
        (why Edlib is the paper's DNA-edit software reference)."""
        from repro.baselines.ksw2 import ksw2_score_timing
        core = CoreModel()
        simd = ksw2_score_timing(4000, 4000, core)
        myers = myers_timing(4000, 4000, core)
        assert myers.cycles < simd.cycles

    def test_scales_with_blocks(self):
        core = CoreModel()
        one_block = myers_timing(WORD_BITS, 1000, core)
        four_blocks = myers_timing(4 * WORD_BITS, 1000, core)
        assert 3.0 < four_blocks.cycles / one_block.cycles < 5.0


class TestWorkingSet:
    def test_words_per_block_scale_with_alphabet(self):
        """Pv + Mv + one Peq word per symbol: (2 + n_symbols) words of
        8 bytes per 64-row block -- the old hardcoded 6 words/block
        undercounted every alphabet but DNA."""
        for n_symbols in (4, 20, 256):
            assert myers_working_set(
                WORD_BITS, n_symbols) == 8 * (2 + n_symbols)
        # Three blocks of a 130-row pattern, protein alphabet.
        assert myers_working_set(130, 20) == 3 * 8 * 22

    def test_dna_default_matches_legacy_constant(self):
        """The n_symbols=4 default keeps the original 6 words/block."""
        assert myers_working_set(64) == 6 * 8
        assert myers_working_set(4000) == ((4000 + 63) // 64) * 6 * 8

    def test_timing_working_set_grows_with_alphabet(self):
        core = CoreModel()
        dna = myers_timing(4000, 4000, core, n_symbols=4)
        protein = myers_timing(4000, 4000, core, n_symbols=20)
        # Same instruction mix, bigger resident Peq: protein cannot be
        # faster than DNA, and the sweep still covers n*m cells.
        assert protein.cycles >= dna.cycles
        assert protein.cells == dna.cells == 4000 * 4000
