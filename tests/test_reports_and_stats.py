"""Coverage for report containers, counters, and small utilities."""

from pathlib import Path

import pytest

from repro.__main__ import main
from repro.analysis.reporting import bench_scale
from repro.core.system import WorkloadTiming
from repro.errors import ConfigurationError
from repro.obs import reports as obs_reports
from repro.sim.stats import CoprocReport, PhaseBreakdown, RunTiming
from repro.workloads.datasets import Dataset, fixed_length_pairs
from repro.encoding.alphabet import DNA

GOLDEN = Path(__file__).resolve().parent.parent \
    / "results" / "table3_gcups.json"


class TestCoprocReport:
    def test_zero_cycle_guards(self):
        report = CoprocReport()
        assert report.engine_utilization == 0.0
        assert report.port_occupancy == 0.0
        assert report.bytes_transferred == 0

    def test_utilization_capped_at_one(self):
        report = CoprocReport(total_cycles=10, engine_busy_cycles=20)
        assert report.engine_utilization == 1.0

    def test_bytes(self):
        report = CoprocReport(lines_loaded=3, lines_stored=2)
        assert report.bytes_transferred == 5 * 64

    def test_to_dict_round_trips_fields(self):
        report = CoprocReport(total_cycles=100, engine_busy_cycles=80,
                              tiles_computed=80, lines_loaded=4,
                              lines_stored=2, port_busy_cycles=6,
                              jobs_completed=1, engine_issues=80)
        as_dict = report.to_dict()
        assert as_dict["total_cycles"] == 100
        assert as_dict["engine_utilization"] == pytest.approx(0.8)
        assert as_dict["bytes_transferred"] == 6 * 64

    def test_utilization_exact_at_full_occupancy(self):
        # The min(1.0) clamp must not distort a legitimate 100% run.
        report = CoprocReport(total_cycles=50, engine_busy_cycles=50,
                              port_busy_cycles=50)
        assert report.engine_utilization == 1.0
        assert report.port_occupancy == 1.0


class TestPhaseBreakdown:
    def test_core_busy_fraction(self):
        phase = PhaseBreakdown(core_cycles=40, coproc_cycles=100,
                               overlapped_cycles=100)
        assert phase.core_busy_fraction == pytest.approx(0.4)

    def test_zero_guard(self):
        assert PhaseBreakdown().core_busy_fraction == 0.0

    def test_zero_overlap_with_core_work_is_still_zero(self):
        # A zero-length overlap window means nothing executed: the
        # fraction is pinned to 0.0 rather than dividing by zero, even
        # if (inconsistent) core cycles were reported.
        phase = PhaseBreakdown(core_cycles=10.0, overlapped_cycles=0.0)
        assert phase.core_busy_fraction == 0.0

    def test_fraction_clamped_at_one(self):
        phase = PhaseBreakdown(core_cycles=150.0, overlapped_cycles=100.0)
        assert phase.core_busy_fraction == 1.0


class TestRunTiming:
    def test_zero_cycles(self):
        timing = RunTiming(name="x", cycles=0, cells=10, alignments=1)
        assert timing.gcups == 0.0
        assert timing.alignments_per_second == 0.0
        # A zero-cycle baseline yields zero speedup for real runs.
        assert RunTiming(name="y", cycles=1).speedup_over(timing) == 0.0

    def test_speedup_of_zero_cycles_is_inf(self):
        zero = RunTiming(name="z", cycles=0)
        other = RunTiming(name="o", cycles=5)
        assert zero.speedup_over(other) == float("inf")

    def test_speedup_of_two_zero_runs_is_one(self):
        # 0/0 is "equal", not "infinitely faster".
        zero_a = RunTiming(name="a", cycles=0)
        zero_b = RunTiming(name="b", cycles=0)
        assert zero_a.speedup_over(zero_b) == 1.0

    def test_frequency_scales_seconds(self):
        slow = RunTiming(name="a", cycles=1e9, frequency_ghz=1.0)
        fast = RunTiming(name="b", cycles=1e9, frequency_ghz=2.0)
        assert fast.seconds == slow.seconds / 2


class TestWorkloadTiming:
    def make(self, total=100.0, core=40.0):
        return WorkloadTiming(name="w", total_cycles=total,
                              core_cycles=core, coproc_report=None,
                              cells=1000, alignments=2)

    def test_core_busy_fraction(self):
        assert self.make().core_busy_fraction == pytest.approx(0.4)

    def test_zero_total(self):
        timing = self.make(total=0.0)
        assert timing.core_busy_fraction == 0.0
        assert timing.engine_utilization == 0.0
        assert timing.gcups == 0.0

    def test_engine_utilization_without_report(self):
        assert self.make().engine_utilization == 0.0

    def test_to_run_timing(self):
        run = self.make().to_run_timing()
        assert run.cycles == 100.0
        assert run.cells == 1000


class TestDatasetContainer:
    def test_iteration_and_len(self):
        ds = fixed_length_pairs(DNA, 64, 3, error_rate=0.05)
        assert len(ds) == 3
        assert len(list(ds)) == 3

    def test_empty_dataset_stats(self):
        ds = Dataset(name="empty", pairs=[])
        assert ds.total_cells == 0
        assert ds.mean_length == 0.0


class TestGoldenReport:
    """The checked-in ``results/table3_gcups.json`` is a regression
    anchor: it must keep satisfying the ``smx-run-report/1`` contract,
    survive a write/load round trip, and stay renderable by the
    ``repro stats`` command."""

    def test_golden_report_schema(self):
        report = obs_reports.load_report(str(GOLDEN))
        assert report["schema"] == obs_reports.SCHEMA
        assert report["name"] == "table3_gcups"
        assert isinstance(report["params"], dict)
        assert isinstance(report["metrics"], dict)
        entries = report["tables"]["entries"]
        assert entries, "table 3 must list at least one accelerator"
        for row in entries:
            assert set(row) >= {"name", "device", "processing_units",
                                "peak_gcups_per_pu"}

    def test_golden_report_round_trips(self, tmp_path):
        report = obs_reports.load_report(str(GOLDEN))
        copy_path = obs_reports.write_json(report,
                                           str(tmp_path / "copy.json"))
        assert obs_reports.load_report(copy_path) == report

    def test_stats_command_renders_golden_report(self, tmp_path, capsys):
        assert main(["stats", str(GOLDEN)]) == 0
        out = capsys.readouterr().out
        assert "table3_gcups" in out
        # And the same renderer accepts a round-tripped copy.
        report = obs_reports.load_report(str(GOLDEN))
        copy_path = obs_reports.write_json(report,
                                           str(tmp_path / "copy.json"))
        capsys.readouterr()
        assert main(["stats", copy_path]) == 0
        assert "table3_gcups" in capsys.readouterr().out


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("SMX_BENCH_SCALE", raising=False)
        assert bench_scale() == 0.2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("SMX_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    @pytest.mark.parametrize("raw", ["abc", "", "0.2x", "nan", "inf"])
    def test_non_numeric_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("SMX_BENCH_SCALE", raw)
        with pytest.raises(ConfigurationError, match="SMX_BENCH_SCALE"):
            bench_scale()

    @pytest.mark.parametrize("raw", ["-1", "0", "-0.5"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("SMX_BENCH_SCALE", raw)
        with pytest.raises(ConfigurationError, match="positive"):
            bench_scale()
