"""Coverage for report containers, counters, and small utilities."""

import pytest

from repro.analysis.reporting import bench_scale
from repro.core.system import WorkloadTiming
from repro.sim.stats import CoprocReport, PhaseBreakdown, RunTiming
from repro.workloads.datasets import Dataset, fixed_length_pairs
from repro.encoding.alphabet import DNA


class TestCoprocReport:
    def test_zero_cycle_guards(self):
        report = CoprocReport()
        assert report.engine_utilization == 0.0
        assert report.port_occupancy == 0.0
        assert report.bytes_transferred == 0

    def test_utilization_capped_at_one(self):
        report = CoprocReport(total_cycles=10, engine_busy_cycles=20)
        assert report.engine_utilization == 1.0

    def test_bytes(self):
        report = CoprocReport(lines_loaded=3, lines_stored=2)
        assert report.bytes_transferred == 5 * 64


class TestPhaseBreakdown:
    def test_core_busy_fraction(self):
        phase = PhaseBreakdown(core_cycles=40, coproc_cycles=100,
                               overlapped_cycles=100)
        assert phase.core_busy_fraction == pytest.approx(0.4)

    def test_zero_guard(self):
        assert PhaseBreakdown().core_busy_fraction == 0.0


class TestRunTiming:
    def test_zero_cycles(self):
        timing = RunTiming(name="x", cycles=0, cells=10, alignments=1)
        assert timing.gcups == 0.0
        assert timing.alignments_per_second == 0.0
        # A zero-cycle baseline yields zero speedup for real runs.
        assert RunTiming(name="y", cycles=1).speedup_over(timing) == 0.0

    def test_speedup_of_zero_cycles_is_inf(self):
        zero = RunTiming(name="z", cycles=0)
        other = RunTiming(name="o", cycles=5)
        assert zero.speedup_over(other) == float("inf")

    def test_frequency_scales_seconds(self):
        slow = RunTiming(name="a", cycles=1e9, frequency_ghz=1.0)
        fast = RunTiming(name="b", cycles=1e9, frequency_ghz=2.0)
        assert fast.seconds == slow.seconds / 2


class TestWorkloadTiming:
    def make(self, total=100.0, core=40.0):
        return WorkloadTiming(name="w", total_cycles=total,
                              core_cycles=core, coproc_report=None,
                              cells=1000, alignments=2)

    def test_core_busy_fraction(self):
        assert self.make().core_busy_fraction == pytest.approx(0.4)

    def test_zero_total(self):
        timing = self.make(total=0.0)
        assert timing.core_busy_fraction == 0.0
        assert timing.engine_utilization == 0.0
        assert timing.gcups == 0.0

    def test_engine_utilization_without_report(self):
        assert self.make().engine_utilization == 0.0

    def test_to_run_timing(self):
        run = self.make().to_run_timing()
        assert run.cycles == 100.0
        assert run.cells == 1000


class TestDatasetContainer:
    def test_iteration_and_len(self):
        ds = fixed_length_pairs(DNA, 64, 3, error_rate=0.05)
        assert len(ds) == 3
        assert len(list(ds)) == 3

    def test_empty_dataset_stats(self):
        ds = Dataset(name="empty", pairs=[])
        assert ds.total_cells == 0
        assert ds.mean_length == 0.0


class TestBenchScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("SMX_BENCH_SCALE", raising=False)
        assert bench_scale() == 0.2

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("SMX_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5
