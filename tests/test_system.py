"""Tests for the heterogeneous SMX system: functional + timing."""

import numpy as np
import pytest

from repro.core.coprocessor import CoprocParams
from repro.core.system import IMPLEMENTATIONS, SmxSystem
from repro.core.traceback import compute_tile_borders, traceback_with_recompute
from repro.core.worker import BlockJob
from repro.dp.dense import nw_matrix
from repro.dp.traceback import alignment_from_matrix
from repro.errors import OffloadError
from tests.conftest import make_pair


@pytest.fixture()
def system(config):
    return SmxSystem(config)


class TestFunctionalEquivalence:
    def test_align_matches_gold(self, config, system, rng):
        q, r = make_pair(config, 150, 0.2, rng, m=140)
        result = system.align(q, r)
        gold = alignment_from_matrix(nw_matrix(q, r, config.model), q, r,
                                     config.model)
        assert result.score == gold.score
        assert result.alignment.cigar == gold.cigar

    def test_score_matches_align(self, config, system, rng):
        q, r = make_pair(config, 90, 0.25, rng)
        assert system.score(q, r).score == system.align(q, r).score

    def test_score_matches_gold(self, config, system, rng):
        q, r = make_pair(config, 120, 0.15, rng, m=95)
        assert system.score(q, r).score == system.gold_score(q, r)

    def test_empty_block_rejected(self, configs):
        system = SmxSystem(configs["dna-edit"])
        with pytest.raises(OffloadError):
            system.align(np.array([], dtype=np.uint8),
                         np.array([0], dtype=np.uint8))

    def test_recompute_is_partial(self, configs, rng):
        """Traceback recomputes only path tiles (Fig. 8a green cells)."""
        config = configs["dna-edit"]
        system = SmxSystem(config)
        q, r = make_pair(config, 500, 0.1, rng)
        result = system.align(q, r)
        assert 0 < result.cells_recomputed < 0.4 * result.cells_computed

    def test_border_storage_is_partial(self, configs, rng):
        config = configs["dna-edit"]
        system = SmxSystem(config)
        q, r = make_pair(config, 400, 0.1, rng)
        result = system.align(q, r)
        assert result.border_elements_stored < 0.2 * result.cells_computed


class TestTileBorderStore:
    def test_rows_match_strip_boundaries(self, configs, rng):
        config = configs["dna-gap"]
        q, r = make_pair(config, 70, 0.2, rng, m=80)
        store = compute_tile_borders(q, r, config.model, config.vl)
        from repro.dp.delta import block_deltas
        block = block_deltas(q, r, config.model)
        for strip_index, row in enumerate(store.dhp_rows):
            global_row = min(strip_index * config.vl, len(q))
            assert np.array_equal(row, block.dhp[global_row])

    def test_traceback_recompute_matches_gold(self, config, rng):
        q, r = make_pair(config, 130, 0.25, rng, m=120)
        store = compute_tile_borders(q, r, config.model, config.vl)
        alignment, recomputed = traceback_with_recompute(
            store, q, r, config.model)
        gold = alignment_from_matrix(nw_matrix(q, r, config.model), q, r,
                                     config.model)
        assert alignment.cigar == gold.cigar
        assert recomputed > 0

    def test_stored_elements_accounting(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 64, 0.1, rng, m=64)
        store = compute_tile_borders(q, r, config.model, config.vl)
        assert store.strips == (len(q) + 31) // 32
        assert store.stored_elements > 0


class TestCoprocSampling:
    def test_exact_small_workload(self, configs):
        system = SmxSystem(configs["dna-edit"])
        jobs = [BlockJob(n=500, m=500, ew=2, job_id=i) for i in range(4)]
        _, multiplier = system.simulate_coproc(jobs)
        assert multiplier == 1.0

    def test_scaled_large_workload(self, configs):
        system = SmxSystem(configs["dna-edit"], max_sim_tiles=2000)
        jobs = [BlockJob(n=20_000, m=20_000, ew=2, job_id=0)]
        report, multiplier = system.simulate_coproc(jobs)
        assert multiplier > 1.0
        assert report.tiles_computed <= 4000

    def test_sampling_preserves_throughput(self, configs):
        """Scaled-down simulation extrapolates to within ~15% of exact."""
        exact_sys = SmxSystem(configs["dna-edit"], max_sim_tiles=10 ** 9)
        scaled_sys = SmxSystem(configs["dna-edit"], max_sim_tiles=4000)
        jobs = [BlockJob(n=4000, m=4000, ew=2, job_id=i) for i in range(4)]
        exact, mult_e = exact_sys.simulate_coproc(jobs)
        scaled, mult_s = scaled_sys.simulate_coproc(jobs)
        assert mult_e == 1.0 and mult_s > 1.0
        exact_cycles = exact.total_cycles
        est_cycles = scaled.total_cycles * mult_s
        assert abs(est_cycles - exact_cycles) / exact_cycles < 0.15


class TestImplementationTiming:
    @pytest.mark.parametrize("impl", IMPLEMENTATIONS)
    @pytest.mark.parametrize("mode", ["score", "align"])
    def test_positive_cycles(self, configs, impl, mode):
        system = SmxSystem(configs["dna-edit"])
        timing = system.implementation_timing(500, 500, mode, impl)
        assert timing.cycles > 0
        assert timing.gcups > 0

    def test_smx_beats_simd_scores(self, configs):
        system = SmxSystem(configs["dna-edit"])
        simd = system.implementation_timing(1000, 1000, "score", "simd")
        smx = system.implementation_timing(1000, 1000, "score", "smx")
        assert simd.cycles / smx.cycles > 50

    def test_smx1d_intermediate(self, configs):
        """SMX-1D sits between SIMD and SMX (paper Fig. 9)."""
        system = SmxSystem(configs["dna-edit"])
        simd = system.implementation_timing(1000, 1000, "score", "simd")
        smx1d = system.implementation_timing(1000, 1000, "score", "smx1d")
        smx = system.implementation_timing(1000, 1000, "score", "smx")
        assert smx.cycles < smx1d.cycles < simd.cycles

    def test_smx_handles_traceback_better_than_smx2d(self, configs):
        """SMX-1D-assisted traceback beats scalar recompute (Sec. 8)."""
        system = SmxSystem(configs["dna-edit"])
        smx2d = system.implementation_timing(1000, 1000, "align", "smx2d")
        smx = system.implementation_timing(1000, 1000, "align", "smx")
        assert smx.cycles < smx2d.cycles

    def test_unknown_impl_rejected(self, configs):
        system = SmxSystem(configs["dna-edit"])
        with pytest.raises(OffloadError):
            system.implementation_timing(100, 100, "score", "gpu")

    def test_unknown_mode_rejected(self, configs):
        system = SmxSystem(configs["dna-edit"])
        with pytest.raises(OffloadError):
            system.coproc_workload_timing([(10, 10)], mode="banana",
                                          impl="smx")

    def test_speedup_grows_with_length_for_smx(self, configs):
        system = SmxSystem(configs["dna-edit"])
        speedups = []
        for size in (100, 1000, 4000):
            simd = system.implementation_timing(size, size, "score", "simd")
            smx = system.implementation_timing(size, size, "score", "smx")
            speedups.append(simd.cycles / smx.cycles)
        assert speedups == sorted(speedups)

    def test_workload_timing_fields(self, configs):
        system = SmxSystem(configs["dna-gap"])
        workload = system.coproc_workload_timing([(600, 600)] * 4,
                                                 mode="score", impl="smx")
        assert workload.total_cycles >= workload.core_cycles
        assert 0 <= workload.core_busy_fraction <= 1
        assert 0 < workload.engine_utilization <= 1
        assert workload.cells == 4 * 600 * 600

    def test_extra_core_cycles_list_validation(self, configs):
        system = SmxSystem(configs["dna-edit"])
        with pytest.raises(OffloadError, match="extra-core"):
            system.coproc_workload_timing([(10, 10)] * 3, mode="score",
                                          impl="smx",
                                          extra_core_cycles_per_block=[1.0])

    def test_more_workers_not_slower(self, configs):
        shapes = [(1000, 1000)] * 8
        slow = SmxSystem(configs["dna-edit"],
                         coproc=CoprocParams(n_workers=1))
        fast = SmxSystem(configs["dna-edit"],
                         coproc=CoprocParams(n_workers=4))
        t_slow = slow.coproc_workload_timing(shapes, "score", "smx")
        t_fast = fast.coproc_workload_timing(shapes, "score", "smx")
        assert t_fast.total_cycles <= t_slow.total_cycles
