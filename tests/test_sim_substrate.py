"""Tests for the timing substrate: events, resources, core, caches, SoC."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import LINE_BYTES, MemoryHierarchy
from repro.sim.clock import EventQueue, ResourceTimeline
from repro.sim.cpu import GEM5_OOO, RTL_INORDER, CoreModel, InstructionMix
from repro.sim.soc import SocParams, multicore_scaling
from repro.sim.stats import RunTiming


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(5, "b")
        queue.push(2, "a")
        queue.push(9, "c")
        assert [queue.pop()[1] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        queue = EventQueue()
        queue.push(3, "first")
        queue.push(3, "second")
        assert queue.pop()[1] == "first"
        assert queue.pop()[1] == "second"

    def test_past_event_rejected(self):
        queue = EventQueue()
        queue.push(10, "x")
        queue.pop()
        with pytest.raises(SimulationError, match="before current time"):
            queue.push(5, "y")

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError, match="empty"):
            EventQueue().pop()

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(0, "x")
        assert queue and len(queue) == 1


class TestResourceTimeline:
    def test_serializes_grants(self):
        engine = ResourceTimeline("engine")
        assert engine.acquire(0) == 0
        assert engine.acquire(0) == 1
        assert engine.acquire(0) == 2

    def test_idle_gap_not_reusable(self):
        """The timeline is monotonic: a later request cannot claim an
        earlier idle cycle (events must arrive in time order)."""
        engine = ResourceTimeline("engine")
        assert engine.acquire(10) == 10
        assert engine.acquire(3) == 11

    def test_busy_accounting(self):
        port = ResourceTimeline("port")
        for t in range(5):
            port.acquire(t)
        assert port.busy_cycles == 5
        assert port.grants == 5
        assert port.utilization(10) == 0.5

    def test_interval(self):
        slow = ResourceTimeline("slow", interval=4)
        assert slow.acquire(0) == 0
        assert slow.acquire(0) == 4

    def test_bad_interval(self):
        with pytest.raises(SimulationError):
            ResourceTimeline("bad", interval=0)


class TestInstructionMix:
    def test_total(self):
        mix = InstructionMix(int_ops=10, simd_ops=5, loads=3, stores=2,
                             branches=1)
        assert mix.total == 21

    def test_scaled(self):
        mix = InstructionMix(int_ops=10, mispredictions=1).scaled(2.5)
        assert mix.int_ops == 25
        assert mix.mispredictions == 2.5

    def test_plus(self):
        combined = InstructionMix(loads=1).plus(InstructionMix(loads=2,
                                                               smx_ops=4))
        assert combined.loads == 3
        assert combined.smx_ops == 4


class TestCoreModel:
    def test_width_bound(self):
        core = CoreModel()
        mix = InstructionMix(int_ops=4, loads=4, stores=0, branches=0)
        # 8 instructions / 8-wide = 1 cycle minimum; loads 4/2 = 2 binds.
        assert core.compute_cycles(mix) == 2.0

    def test_port_bound(self):
        core = CoreModel()
        mix = InstructionMix(smx_ops=16)
        ports = core.params.smx_ports
        assert core.compute_cycles(mix) == 16.0 / ports

    def test_misprediction_penalty(self):
        core = CoreModel()
        mix = InstructionMix(branches=2, mispredictions=1)
        assert core.compute_cycles(mix) == pytest.approx(
            1.0 + core.params.misprediction_penalty)

    def test_inorder_slower(self):
        mix = InstructionMix(int_ops=100, loads=40, stores=20, branches=10)
        ooo = CoreModel(params=GEM5_OOO).compute_cycles(mix)
        inorder = CoreModel(params=RTL_INORDER).compute_cycles(mix)
        assert inorder > ooo

    def test_ooo_overlaps_streaming(self):
        core = CoreModel()
        mix = InstructionMix(int_ops=80_000)
        few_bytes = core.kernel_cycles(mix, bytes_streamed=100,
                                       working_set_bytes=1 << 21)
        many_bytes = core.kernel_cycles(mix, bytes_streamed=10_000,
                                        working_set_bytes=1 << 21)
        assert few_bytes == many_bytes  # hidden under compute

    def test_frequency_positive(self):
        with pytest.raises(ConfigurationError):
            from repro.sim.cpu import CoreParams
            CoreParams(issue_width=0)


class TestMemoryHierarchy:
    def test_residence_levels(self):
        mem = MemoryHierarchy()
        assert mem.residence(10_000).name == "L1D"
        assert mem.residence(200_000).name == "L2"
        assert mem.residence(4 << 20).name == "LLC"
        assert mem.residence(1 << 30).name == "DRAM"

    def test_l1_streaming_free(self):
        mem = MemoryHierarchy()
        assert mem.stream_stall_cycles(1 << 14, 1 << 14) == 0.0

    def test_dram_bandwidth_bound(self):
        mem = MemoryHierarchy()
        stall = mem.stream_stall_cycles(1 << 30, 1 << 30)
        assert stall >= (1 << 30) / mem.dram_bandwidth_bytes_per_cycle

    def test_deeper_levels_cost_more(self):
        mem = MemoryHierarchy()
        costs = [mem.stream_stall_cycles(1 << 20, ws)
                 for ws in (1 << 14, 1 << 19, 1 << 22, 1 << 28)]
        assert costs == sorted(costs)

    def test_random_access_charges_l1(self):
        """Dependent chains pay latency even in L1 (traceback walks,
        substitution gathers)."""
        mem = MemoryHierarchy()
        assert mem.random_access_cycles(100, 1 << 10) == 300.0

    def test_line_constant(self):
        assert LINE_BYTES == 64


class TestMulticoreScaling:
    def test_near_linear_low_traffic(self):
        points = multicore_scaling(1e9, traffic_bytes=1e6)
        eight = points[-1]
        assert eight.cores == 8
        assert eight.speedup > 7.0

    def test_bandwidth_bound_saturates(self):
        points = multicore_scaling(1e6, traffic_bytes=1e9)
        assert points[-1].speedup < 4.0

    def test_efficiency_bounded(self):
        for point in multicore_scaling(1e8, traffic_bytes=1e7):
            assert 0 < point.efficiency <= 1.0

    def test_monotone_speedup(self):
        points = multicore_scaling(1e9, traffic_bytes=5e7)
        speedups = [p.speedup for p in points]
        assert speedups == sorted(speedups)

    def test_invalid_cycles(self):
        with pytest.raises(ConfigurationError):
            multicore_scaling(0, traffic_bytes=0)

    def test_custom_core_counts(self):
        points = multicore_scaling(1e8, 0, core_counts=[1, 16])
        assert [p.cores for p in points] == [1, 16]

    def test_soc_params(self):
        params = SocParams(shared_traffic_fraction=0.5)
        points = multicore_scaling(1e8, 1e8, params=params)
        assert points[0].speedup == pytest.approx(1.0, rel=0.1)


class TestRunTiming:
    def test_gcups(self):
        timing = RunTiming(name="x", cycles=1e9, cells=10 ** 9)
        assert timing.gcups == pytest.approx(1.0)

    def test_alignments_per_second(self):
        timing = RunTiming(name="x", cycles=1e9, alignments=100)
        assert timing.alignments_per_second == pytest.approx(100.0)

    def test_speedup_over(self):
        fast = RunTiming(name="fast", cycles=10)
        slow = RunTiming(name="slow", cycles=100)
        assert fast.speedup_over(slow) == 10.0
