"""Tests for scoring models and substitution matrices."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.scoring.model import (
    MatchMismatchModel,
    SubstitutionMatrixModel,
    dna_gap_model,
    edit_model,
)
from repro.scoring.submat import blosum50, blosum62, load_matrix, pam250


class TestMatchMismatchModel:
    def test_edit_model_values(self):
        model = edit_model()
        assert model.substitution(0, 0) == 0
        assert model.substitution(0, 1) == -1
        assert model.gap_i == model.gap_d == -1

    def test_edit_theta_is_two(self):
        """Edit distance fits 2-bit elements: theta = 0 + 1 + 1 = 2."""
        model = edit_model()
        assert model.theta == 2
        assert model.min_element_width == 2

    def test_dna_gap_theta(self):
        model = dna_gap_model(match=2, mismatch=-4, gap=-2)
        assert model.theta == 6
        assert model.min_element_width == 3

    def test_positive_gap_rejected(self):
        with pytest.raises(ConfigurationError, match="non-positive"):
            MatchMismatchModel(match=1, mismatch=-1, gap_i=1, gap_d=-1)

    def test_mismatch_above_match_rejected(self):
        with pytest.raises(ConfigurationError, match="exceeds match"):
            MatchMismatchModel(match=0, mismatch=1, gap_i=-1, gap_d=-1)

    def test_unshiftable_rejected(self):
        # mismatch -5 < gap_i + gap_d = -2: shifted score negative.
        with pytest.raises(ConfigurationError, match="shifted encoding"):
            MatchMismatchModel(match=0, mismatch=-5, gap_i=-1, gap_d=-1)

    def test_substitution_row_vectorized(self):
        model = dna_gap_model()
        row = model.substitution_row(2, np.array([0, 1, 2, 3]))
        assert list(row) == [-4, -4, 2, -4]

    def test_substitution_table_diagonal(self):
        model = edit_model()
        table = model.substitution_table()
        assert (np.diag(table) == 0).all()
        assert table[0, 1] == -1

    def test_shifted_table_non_negative(self):
        model = dna_gap_model()
        assert model.shifted_table().min() >= 0

    def test_shifted_substitution(self):
        model = dna_gap_model(match=2, mismatch=-4, gap=-2)
        assert model.shifted_substitution(0, 0) == 6   # theta on match
        assert model.shifted_substitution(0, 1) == 0


class TestSubstitutionMatrices:
    @pytest.mark.parametrize("loader", [blosum50, blosum62, pam250])
    def test_symmetric(self, loader):
        matrix = loader()
        assert np.array_equal(matrix.table, matrix.table.T)

    def test_blosum50_extremes(self):
        """Paper Sec. 4.3.3: BLOSUM/PAM values range -6..15; BLOSUM50's
        max is the W/W score."""
        matrix = blosum50()
        assert matrix.smax == 15
        assert matrix.score("W", "W") == 15
        assert matrix.smin == -5

    def test_blosum62_known_values(self):
        matrix = blosum62()
        assert matrix.score("W", "W") == 11
        assert matrix.score("A", "A") == 4
        assert matrix.score("A", "R") == -1

    def test_pam250_known_values(self):
        matrix = pam250()
        assert matrix.score("W", "W") == 17
        assert matrix.score("F", "Y") == 7

    def test_undefined_letters_inherit_x(self):
        matrix = blosum50()
        # J, O, U have no amino-acid meaning -> X column scores.
        assert matrix.score("J", "A") == matrix.score("X", "A")
        assert matrix.score("O", "W") == matrix.score("X", "W")

    def test_unknown_matrix_name(self):
        with pytest.raises(ConfigurationError, match="unknown matrix"):
            load_matrix("BLOSUM999")

    def test_case_insensitive_score(self):
        matrix = blosum62()
        assert matrix.score("w", "w") == 11


class TestSubstitutionMatrixModel:
    def test_theta_with_blosum50(self):
        """The paper's example: BLOSUM + indels 5..12 -> theta <= 39,
        encodable in 6 bits."""
        model = SubstitutionMatrixModel(blosum50(), gap_i=-12, gap_d=-12)
        assert model.theta == 15 + 12 + 12
        assert model.min_element_width == 6

    def test_smin_smax(self):
        model = SubstitutionMatrixModel(blosum50(), gap_i=-10, gap_d=-10)
        assert model.smax == 15
        assert model.smin == -5

    def test_substitution_lookup(self):
        model = SubstitutionMatrixModel(blosum62(), gap_i=-8, gap_d=-8)
        w = ord("W") - 65
        assert model.substitution(w, w) == 11

    def test_insufficient_gap_rejected(self):
        # BLOSUM50 smin = -5; gaps of -2 give shift -4 > smin.
        with pytest.raises(ConfigurationError, match="shifted encoding"):
            SubstitutionMatrixModel(blosum50(), gap_i=-2, gap_d=-2)

    def test_shifted_table_bounds(self):
        model = SubstitutionMatrixModel(blosum50(), gap_i=-10, gap_d=-10)
        shifted = model.shifted_table()
        assert shifted.min() >= 0
        assert shifted.max() == model.theta
