"""Tests for the live telemetry event stream (repro.obs.events) and
its wiring into the batch and supervised engines."""

import io
import json

import numpy as np
import pytest

from repro.config import dna_edit_config
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import Observability
from repro.obs.events import (
    EventStream,
    KINDS,
    NULL_EVENTS,
    SCHEMA,
    open_jsonl,
    read_jsonl,
    summarize,
)


def _pairs(count, length=40, seed=5):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, 4, length, dtype=np.uint8),
             rng.integers(0, 4, length, dtype=np.uint8))
            for _ in range(count)]


class TestEventStream:
    def test_header_and_envelope(self):
        stream = EventStream()
        assert stream.events[0]["kind"] == "stream_start"
        assert stream.events[0]["schema"] == SCHEMA
        event = stream.emit("progress", done=3, total=9)
        assert event["kind"] == "progress"
        assert event["done"] == 3
        # seq is monotone, t non-decreasing.
        seqs = [e["seq"] for e in stream.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        times = [e["t"] for e in stream.events]
        assert times == sorted(times)

    def test_sink_receives_json_lines(self):
        sink = io.StringIO()
        stream = EventStream(sink=sink)
        stream.emit("heartbeat", done=1, total=2)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 2  # header + heartbeat
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["kind"] == "stream_start"
        assert parsed[1]["kind"] == "heartbeat"

    def test_subscribers_see_future_events(self):
        stream = EventStream()
        seen = []
        stream.subscribe(seen.append)
        stream.emit("progress", done=1, total=1)
        assert [e["kind"] for e in seen] == ["progress"]

    def test_ring_buffer_bounded(self):
        stream = EventStream(max_events=4)
        for i in range(10):
            stream.emit("progress", done=i, total=10)
        assert len(stream.events) == 4
        assert stream.last("progress")["done"] == 9

    def test_of_kind_and_last(self):
        stream = EventStream()
        stream.emit("fault", index=1)
        stream.emit("fault", index=2)
        assert [e["index"] for e in stream.of_kind("fault")] == [1, 2]
        assert stream.last("fault")["index"] == 2
        assert stream.last("quarantine") is None

    def test_null_stream_drops_everything(self):
        assert NULL_EVENTS.emit("progress", done=1) == {}
        assert list(NULL_EVENTS.events) == []
        assert not NULL_EVENTS.enabled

    def test_known_kinds_cover_engine_emissions(self):
        for kind in ("batch_start", "progress", "batch_end",
                     "quarantine", "heartbeat"):
            assert kind in KINDS


class TestJsonlRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        stream = open_jsonl(str(path))
        stream.emit("progress", done=2, total=4)
        stream.emit("run_end", pairs=4)
        stream.close()
        events = read_jsonl(str(path))
        assert [e["kind"] for e in events] == \
            ["stream_start", "progress", "run_end"]
        assert events[0]["schema"] == SCHEMA

    def test_read_rejects_malformed_interior_line(self, tmp_path):
        # A bad line *followed by* a good one is corruption, not a
        # truncated tail: it raises even in tolerant (default) mode.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress"}\nnot json\n'
                        '{"kind": "run_end"}\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(str(path))

    def test_read_skips_truncated_final_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress"}\n{"kind": "run_e')
        from repro.obs.events import load_events
        events, skipped = load_events(str(path))
        assert [e["kind"] for e in events] == ["progress"]
        assert skipped == 1

    def test_read_strict_rejects_truncated_final_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(str(path), strict=True)

    def test_read_rejects_multiple_trailing_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress"}\nnot json\nalso bad\n')
        with pytest.raises(ValueError, match=":2:"):
            read_jsonl(str(path))

    def test_read_rejects_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="not a JSON object"):
            read_jsonl(str(path), strict=True)

    def test_read_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "progress", "t": 1.0}\n\n')
        assert len(read_jsonl(str(path))) == 1


class TestSummarize:
    def test_summary_fields(self):
        stream = EventStream()
        stream.emit("batch_start", pairs=8)
        stream.emit("progress", done=4, total=8)
        stream.emit("quarantine", index=3)
        stream.emit("batch_end", pairs=8)
        digest = summarize(list(stream.events))
        assert digest["schema"] == SCHEMA
        assert digest["events"] == 5
        assert digest["by_kind"]["progress"] == 1
        assert digest["progress"]["done"] == 4
        assert len(digest["quarantines"]) == 1
        assert digest["run_start"]["kind"] == "batch_start"
        assert digest["run_end"]["kind"] == "batch_end"

    def test_summary_of_empty_and_partial_streams(self):
        assert summarize([])["events"] == 0
        partial = summarize([{"kind": "progress", "t": 1.5, "done": 1}])
        assert partial["duration_s"] == 1.5
        assert partial["run_end"] is None


class TestEngineEvents:
    def test_batch_engine_emits_lifecycle_events(self):
        config = dna_edit_config()
        stream = EventStream()
        ctx = Observability.enabled_context(events=stream)
        BatchEngine(config, BatchConfig(), obs=ctx).run(_pairs(6))
        kinds = [e["kind"] for e in stream.events]
        assert kinds[0] == "stream_start"
        assert "batch_start" in kinds and "batch_end" in kinds
        assert kinds.index("batch_start") < kinds.index("batch_end")
        start = stream.last("batch_start")
        assert start["pairs"] == 6
        assert start["engine"] == "vector"
        assert stream.of_kind("progress")

    def test_supervised_engine_emits_run_and_heartbeat(self):
        from repro.resilience import ResilienceConfig, SupervisedEngine

        config = dna_edit_config()
        stream = EventStream()
        ctx = Observability.enabled_context(events=stream)
        policy = ResilienceConfig(backend="thread", backoff_base_s=0.0)
        outcome = SupervisedEngine(config, BatchConfig(workers=2),
                                   policy, obs=ctx).run(_pairs(8))
        assert not outcome.failures
        kinds = [e["kind"] for e in stream.events]
        assert "run_start" in kinds and "run_end" in kinds
        assert "shard_start" in kinds and "shard_done" in kinds
        assert "heartbeat" in kinds
        beat = stream.last("heartbeat")
        assert beat["done"] == 8 and beat["total"] == 8
        assert stream.last("run_end")["failures"] == 0

    def test_supervised_faults_emit_quarantine_trail(self):
        from repro.resilience import (
            ChaosPlan,
            ResilienceConfig,
            SupervisedEngine,
        )

        config = dna_edit_config()
        stream = EventStream()
        ctx = Observability.enabled_context(events=stream)
        policy = ResilienceConfig(backend="thread", max_retries=1,
                                  backoff_base_s=0.0)
        plan = ChaosPlan(crash=1.0, persistent_fraction=1.0, seed=9)
        outcome = SupervisedEngine(config, BatchConfig(), policy,
                                   obs=ctx, plan=plan).run(_pairs(3))
        assert outcome.failures  # crash=1.0 sinks everything
        kinds = {e["kind"] for e in stream.events}
        assert "fault" in kinds
        assert "quarantine" in kinds
        quarantined = {e["index"] for e in stream.of_kind("quarantine")}
        assert quarantined == {f.index for f in outcome.failures}

    def test_disabled_events_identical_results_and_zero_events(self):
        config = dna_edit_config()
        pairs = _pairs(6)
        plain = BatchEngine(config, BatchConfig()).run(pairs)
        stream = EventStream()
        ctx = Observability.enabled_context(events=stream)
        observed = BatchEngine(config, BatchConfig(), obs=ctx).run(pairs)
        assert [r.score for r in plain] == [r.score for r in observed]
        assert [r.alignment.cigar_string for r in plain] == \
            [r.alignment.cigar_string for r in observed]
        # The default (disabled) context emitted nothing anywhere.
        assert list(NULL_EVENTS.events) == []
