"""Differential conformance: every DP implementation vs one oracle.

A fast second implementation of every algorithm (the batched vector
engine) is a correctness hazard, so this suite pins *all* of them --
the scalar ``algorithms/`` classes, the ``repro.exec`` kernels, the
SMX functional model, and the functional baselines -- to the
brute-force oracles in ``tests/oracle.py`` on one seeded corpus per
configuration (DNA + protein, lengths 0-200, plus the classic edge
cases: empty, identical, all-mismatch, homopolymer).

Exact implementations must match the oracle's score *and* CIGAR;
heuristics must be admissible (never exceed the optimum, and their
CIGARs must rescore to their claimed score); the vector engine must be
bit-identical to the scalar engine on every field of every result.
"""

from __future__ import annotations

import zlib
from dataclasses import replace

import numpy as np
import pytest

from repro.algorithms import (
    AdaptiveBandAligner,
    AffineAligner,
    AffineGapPenalties,
    BandedAligner,
    FullAligner,
    HirschbergAligner,
    LocalAligner,
    SemiGlobalAligner,
    WavefrontAligner,
    WindowAligner,
    XdropAligner,
)
from repro.api import align, align_batch, score, score_batch
from repro.baselines.ksw2 import ksw2_score
from repro.baselines.myers import myers_edit_distance
from repro.core.system import SmxSystem
from repro.dp.dense import nw_score
from repro.errors import ConfigurationError
from repro.exec import BatchConfig, BatchEngine
from repro.workloads.synthetic import ErrorProfile, mutate

from tests.oracle import cached_oracle

SEED = 0x534D58  # "SMX"

PENALTIES = AffineGapPenalties(open=-6, extend=-1)


def corpus(config) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """Deterministic per-configuration corpus of (name, query, ref)."""
    rng = np.random.default_rng([SEED, zlib.crc32(config.name.encode())])
    alphabet = config.alphabet

    def rand(length: int) -> np.ndarray:
        return alphabet.random(length, rng)

    code_a = int(rand(1)[0])
    code_b = code_a
    while code_b == code_a:
        code_b = int(rand(1)[0])
    identical = rand(83)
    cases = [
        ("empty-both", rand(0), rand(0)),
        ("empty-query", rand(0), rand(40)),
        ("empty-ref", rand(37), rand(0)),
        ("single", rand(1), rand(1)),
        ("identical", identical, identical.copy()),
        ("all-mismatch", np.full(50, code_a, dtype=np.uint8),
         np.full(61, code_b, dtype=np.uint8)),
        ("homopolymer", np.full(64, code_a, dtype=np.uint8),
         np.full(57, code_a, dtype=np.uint8)),
    ]
    profile = ErrorProfile(substitution=0.08, insertion=0.04,
                           deletion=0.04)
    for length in (17, 45, 90, 200):
        reference = rand(length)
        mutated, _ = mutate(reference, profile, alphabet, rng)
        cases.append((f"mutated-{length}", mutated, reference))
    for tag, (n, m) in (("skew-a", (25, 120)), ("skew-b", (120, 25))):
        cases.append((tag, rand(n), rand(m)))
    return cases


def _g(config, q, r):
    return cached_oracle("global", config, q, r)


# ---------------------------------------------------------------------
# Exact global implementations
# ---------------------------------------------------------------------

def test_full_aligner_matches_oracle(config):
    aligner = FullAligner()
    for name, q, r in corpus(config):
        exp_score, exp_cigar = _g(config, q, r)
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name
        assert nw_score(q, r, config.model) == exp_score, name


def test_smx_system_matches_oracle(config):
    system = SmxSystem(config)
    for name, q, r in corpus(config):
        if len(q) == 0 or len(r) == 0:
            continue  # the offload model rejects empty blocks
        exp_score, exp_cigar = _g(config, q, r)
        assert system.score(q, r).score == exp_score, name
        result = system.align(q, r)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name


def test_hirschberg_matches_oracle(config):
    aligner = HirschbergAligner()
    for name, q, r in corpus(config):
        exp_score, _ = _g(config, q, r)
        assert aligner.compute_score(q, r, config.model).score \
            == exp_score, name
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        # Hirschberg may legally pick a different co-optimal path; its
        # CIGAR must still rescore to the optimum.
        result.alignment.validate(q, r, config.model)


def test_wavefront_matches_oracle(config):
    if config.model.theta != 2 or config.model.smax != 0:
        pytest.skip("wavefront implements the unit-cost edit model only")
    aligner = WavefrontAligner()
    for name, q, r in corpus(config):
        exp_score, _ = _g(config, q, r)
        assert aligner.compute_score(q, r, config.model).score \
            == exp_score, name
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        result.alignment.validate(q, r, config.model)


def test_ksw2_differential_matches_oracle(config):
    for name, q, r in corpus(config):
        exp_score, _ = _g(config, q, r)
        assert ksw2_score(q, r, config.model) == exp_score, name


def test_myers_matches_oracle(configs):
    config = configs["dna-edit"]
    for name, q, r in corpus(config):
        exp_score, _ = _g(config, q, r)
        assert myers_edit_distance(q, r) == -exp_score, name


@pytest.mark.parametrize("config_name", ["dna-edit", "ascii"])
def test_myers_bitparallel_oracle_three_way_lock(configs, config_name):
    """Scalar Myers == batched bit-parallel engine == brute-force
    oracle, on the full corpus (multi-block m > 64 patterns via the
    200-length cases, plus the empty / length-1 degenerates)."""
    config = configs[config_name]
    n_symbols = config.alphabet.size
    cases = corpus(config)
    assert any(len(q) > 64 for _, q, r in cases)  # multi-block covered
    engine = BatchEngine(config, BatchConfig(engine="bitparallel",
                                             traceback=False))
    results = engine.run([(q, r) for _, q, r in cases])
    for (name, q, r), result in zip(cases, results):
        exp_score, _ = _g(config, q, r)
        scalar = myers_edit_distance(q, r, n_symbols=n_symbols)
        assert scalar == -exp_score, name
        assert result.score == -scalar == exp_score, name
        assert result.alignment is None, name


# ---------------------------------------------------------------------
# Heuristics: exact when wide open, admissible otherwise
# ---------------------------------------------------------------------

def test_wide_heuristics_are_exact(config):
    banded = BandedAligner(fraction=1.0)
    xdrop = XdropAligner(xdrop=1 << 30)
    for name, q, r in corpus(config):
        exp_score, exp_cigar = _g(config, q, r)
        for aligner in (banded, xdrop):
            result = aligner.align(q, r, config.model)
            assert not result.failed, (name, aligner.name)
            assert result.score == exp_score, (name, aligner.name)
            assert result.alignment.cigar_string == exp_cigar, \
                (name, aligner.name)
            assert aligner.compute_score(q, r, config.model).score \
                == exp_score, (name, aligner.name)


def test_heuristics_are_admissible(config):
    aligners = (BandedAligner(fraction=0.15), XdropAligner(fraction=0.1),
                AdaptiveBandAligner(width=16),
                WindowAligner(window=48, overlap=16))
    for name, q, r in corpus(config):
        exp_score, _ = _g(config, q, r)
        for aligner in aligners:
            result = aligner.align(q, r, config.model)
            if result.failed:
                continue  # dropping the pair entirely is allowed
            assert result.score <= exp_score, (name, aligner.name)
            result.alignment.validate(q, r, config.model)


# ---------------------------------------------------------------------
# Local / semiglobal / affine modes
# ---------------------------------------------------------------------

def test_semiglobal_matches_oracle(config):
    aligner = SemiGlobalAligner()
    for name, q, r in corpus(config):
        exp_score, exp_cigar, ref_start, ref_end = cached_oracle(
            "semiglobal", config, q, r)
        assert aligner.compute_score(q, r, config.model).score \
            == exp_score, name
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name
        assert result.alignment.meta["ref_start"] == ref_start, name
        assert result.alignment.meta["ref_end"] == ref_end, name


def test_local_matches_oracle(config):
    if config.model.smax <= 0:
        pytest.skip("local mode needs a positive match score")
    aligner = LocalAligner()
    for name, q, r in corpus(config):
        exp_score, exp_cigar, (q_start, q_end, r_start, r_end) = \
            cached_oracle("local", config, q, r)
        assert aligner.compute_score(q, r, config.model).score \
            == exp_score, name
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name
        meta = result.alignment.meta
        assert (meta["query_start"], meta["query_end"],
                meta["ref_start"], meta["ref_end"]) \
            == (q_start, q_end, r_start, r_end), name


def test_affine_matches_oracle(config):
    aligner = AffineAligner(PENALTIES)
    for name, q, r in corpus(config):
        exp_score, exp_cigar = cached_oracle(
            "affine", config, q, r,
            extra=(PENALTIES.open, PENALTIES.extend))
        assert aligner.compute_score(q, r, config.model).score \
            == exp_score, name
        result = aligner.align(q, r, config.model)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name


# ---------------------------------------------------------------------
# Batched vector engine: bit-identical to scalar, pinned to the oracle
# ---------------------------------------------------------------------

def _batch_cases(config):
    cases = [
        BatchConfig(engine="vector", mode="global", traceback=True),
        BatchConfig(engine="vector", mode="global", traceback=False),
        BatchConfig(engine="vector", mode="semiglobal", traceback=True),
        BatchConfig(engine="vector", mode="semiglobal", traceback=False),
        BatchConfig(engine="vector", algorithm="affine",
                    affine_penalties=PENALTIES, traceback=True),
        BatchConfig(engine="vector", algorithm="affine",
                    affine_penalties=PENALTIES, traceback=False),
        BatchConfig(engine="vector", algorithm="banded",
                    band_fraction=0.15, traceback=True),
        BatchConfig(engine="vector", algorithm="banded",
                    band_fraction=0.15, traceback=False),
        BatchConfig(engine="vector", algorithm="xdrop",
                    xdrop_fraction=0.1, traceback=True),
        BatchConfig(engine="vector", algorithm="xdrop",
                    xdrop_fraction=0.1, traceback=False),
    ]
    if config.model.smax > 0:
        cases.append(BatchConfig(engine="vector", mode="local",
                                 traceback=True))
        cases.append(BatchConfig(engine="vector", mode="local",
                                 traceback=False))
    return cases


def _assert_identical(vec, sca, context):
    assert vec.score == sca.score, context
    assert vec.failed == sca.failed, context
    assert vec.failure_reason == sca.failure_reason, context
    assert vec.stats == sca.stats, context
    if sca.alignment is None:
        assert vec.alignment is None, context
    else:
        assert vec.alignment == sca.alignment, context


def test_vector_engine_bit_identical_to_scalar(config):
    pairs = [(q, r) for _, q, r in corpus(config)]
    names = [name for name, _, _ in corpus(config)]
    for batch in _batch_cases(config):
        vec = BatchEngine(config, batch).run(pairs)
        sca = BatchEngine(config,
                          replace(batch, engine="scalar")).run(pairs)
        assert len(vec) == len(sca) == len(pairs)
        for name, v, s in zip(names, vec, sca):
            _assert_identical(v, s, (batch.mode, batch.algorithm,
                                     batch.traceback, name))


def test_bitparallel_engine_matches_oracle_and_wavefront(config):
    """The score-only bit-parallel engine against the oracle and the
    scalar ``WavefrontAligner`` on every edit-model configuration;
    non-edit models are rejected with a typed ConfigurationError."""
    engine = BatchEngine(config, BatchConfig(engine="bitparallel",
                                             traceback=False))
    pairs = [(q, r) for _, q, r in corpus(config)]
    if config.model.theta != 2 or config.model.smax != 0:
        with pytest.raises(ConfigurationError):
            engine.run(pairs)
        return
    names = [name for name, _, _ in corpus(config)]
    wavefront = WavefrontAligner()
    results = engine.run(pairs)
    for name, (q, r), result in zip(names, pairs, results):
        exp_score, _ = _g(config, q, r)
        assert result.score == exp_score, name
        assert wavefront.compute_score(q, r, config.model).score \
            == result.score, name


def test_vector_global_matches_oracle(config):
    pairs = [(q, r) for _, q, r in corpus(config)]
    names = [name for name, _, _ in corpus(config)]
    batch = BatchConfig(engine="vector", mode="global", traceback=True)
    results = BatchEngine(config, batch).run(pairs)
    for name, (q, r), result in zip(names, pairs, results):
        exp_score, exp_cigar = _g(config, q, r)
        assert result.score == exp_score, name
        assert result.alignment.cigar_string == exp_cigar, name


def test_vector_engine_order_and_sharding(config):
    pairs = [(q, r) for _, q, r in corpus(config)]
    batch = BatchConfig(engine="vector", mode="global", traceback=True)
    baseline = BatchEngine(config, batch).run(pairs)
    # Reversed submission returns reversed results (order preserved).
    reversed_results = BatchEngine(config, batch).run(pairs[::-1])
    for a, b in zip(baseline, reversed_results[::-1]):
        _assert_identical(a, b, "order")
    # Sharded execution (process pool, or its inline fallback when the
    # sandbox forbids subprocesses) is also identical.
    sharded = BatchEngine(
        config, BatchConfig(engine="vector", mode="global",
                            traceback=True, workers=2)).run(pairs)
    for a, b in zip(baseline, sharded):
        _assert_identical(a, b, "sharded")


# ---------------------------------------------------------------------
# Edge cases: empty batches and zero-length sequences stay well-formed
# ---------------------------------------------------------------------

def test_empty_batch_returns_empty_list(config):
    for batch in (BatchConfig(), BatchConfig(engine="scalar"),
                  BatchConfig(workers=4)):
        assert BatchEngine(config, batch).run([]) == []
    assert align_batch([]) == []
    assert score_batch([]) == []


def test_zero_length_sequences_well_formed():
    for preset in ("dna", "protein", "text"):
        for query, reference in (("", ""), ("", "ACGT"), ("ACGT", "")):
            for mode in ("global", "semiglobal"):
                alignment = align(query, reference, preset=preset,
                                  mode=mode)
                assert alignment is not None
                consumed = alignment.consumed()
                if mode == "global":
                    assert consumed == (len(query), len(reference))
                else:
                    assert consumed[0] == len(query)
                assert isinstance(
                    score(query, reference, preset=preset, mode=mode),
                    int)
    batch = align_batch([("", ""), ("", "AC"), ("AC", ""), ("AC", "AG")])
    assert [a.cigar_string for a in batch] == ["", "2D", "2I", "1=1X"]
