"""Tests for the model-family extensions: affine gaps, adaptive band."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.adaptive import AdaptiveBandAligner
from repro.algorithms.affine import AffineAligner, AffineGapPenalties
from repro.algorithms.full import FullAligner
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import dna_gap_model, edit_model
from repro.scoring.submat import blosum50
from repro.scoring.model import SubstitutionMatrixModel
from tests.conftest import make_pair


def affine_brute_force(q, r, model, penalties):
    """Triple-matrix Gotoh oracle, cell by cell."""
    neg = -(1 << 40)
    n, m = len(q), len(r)
    h = [[neg] * (m + 1) for _ in range(n + 1)]
    e = [[neg] * (m + 1) for _ in range(n + 1)]
    f = [[neg] * (m + 1) for _ in range(n + 1)]
    h[0][0] = 0
    for j in range(1, m + 1):
        e[0][j] = penalties.open + penalties.extend * j
        h[0][j] = e[0][j]
    for i in range(1, n + 1):
        f[i][0] = penalties.open + penalties.extend * i
        h[i][0] = f[i][0]
    first = penalties.open + penalties.extend
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            e[i][j] = max(h[i][j - 1] + first, e[i][j - 1]
                          + penalties.extend)
            f[i][j] = max(h[i - 1][j] + first, f[i - 1][j]
                          + penalties.extend)
            h[i][j] = max(h[i - 1][j - 1]
                          + model.substitution(int(q[i - 1]),
                                               int(r[j - 1])),
                          e[i][j], f[i][j])
    return h[n][m]


class TestAffineAligner:
    @pytest.mark.parametrize("n,m", [(1, 1), (8, 12), (25, 20), (30, 30)])
    def test_score_matches_oracle(self, configs, rng, n, m):
        config = configs["dna-gap"]
        penalties = AffineGapPenalties(open=-4, extend=-1)
        aligner = AffineAligner(penalties)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        expected = affine_brute_force(q, r, config.model, penalties)
        assert aligner.compute_score(q, r, config.model).score == expected

    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 9999), open_=st.integers(-6, 0),
           extend=st.integers(-3, 0))
    def test_property_random_penalties(self, configs, seed, open_, extend):
        config = configs["dna-gap"]
        rng = np.random.default_rng(seed)
        penalties = AffineGapPenalties(open=open_, extend=extend)
        q = config.alphabet.random(15, rng)
        r = config.alphabet.random(18, rng)
        aligner = AffineAligner(penalties)
        expected = affine_brute_force(q, r, config.model, penalties)
        assert aligner.compute_score(q, r, config.model).score == expected

    def test_alignment_cigar_consistent(self, configs, rng):
        config = configs["dna-gap"]
        penalties = AffineGapPenalties(open=-5, extend=-1)
        aligner = AffineAligner(penalties)
        q, r = make_pair(config, 60, 0.15, rng)
        result = aligner.align(q, r, config.model)
        rescored = aligner.rescore_cigar(result.alignment, q, r,
                                         config.model)
        assert rescored == result.score

    def test_protein_affine(self, configs, rng):
        config = configs["protein"]
        penalties = AffineGapPenalties(open=-10, extend=-2)
        model = SubstitutionMatrixModel(blosum50(), gap_i=-12, gap_d=-12)
        aligner = AffineAligner(penalties)
        q = config.alphabet.random(30, rng)
        r = config.alphabet.random(30, rng)
        expected = affine_brute_force(q, r, model, penalties)
        assert aligner.compute_score(q, r, model).score == expected

    def test_long_gap_cheaper_than_linear(self, configs):
        """Affine should prefer one long gap over scattered gaps."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(3)
        r = config.alphabet.random(120, rng)
        q = np.concatenate([r[:40], r[80:]])  # one 40-char deletion
        penalties = AffineGapPenalties(open=-4, extend=-1)
        result = AffineAligner(penalties).align(q, r, config.model)
        gap_runs = [c for c, op in result.alignment.cigar if op == "D"]
        assert max(gap_runs) >= 38  # consolidated into ~one run

    def test_positive_penalties_rejected(self):
        with pytest.raises(ConfigurationError):
            AffineGapPenalties(open=1, extend=-1)

    def test_gap_cost(self):
        penalties = AffineGapPenalties(open=-4, extend=-1)
        assert penalties.cost(0) == 0
        assert penalties.cost(3) == -7

    def test_max_cells_guard(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 100, 0.1, rng)
        aligner = AffineAligner(AffineGapPenalties(-4, -1), max_cells=100)
        with pytest.raises(AlignmentError, match="max_cells"):
            aligner.compute_score(q, r, config.model)

    def test_work_accounting(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 20, 0.1, rng, m=30)
        result = AffineAligner(AffineGapPenalties(-4, -1)).compute_score(
            q, r, config.model)
        assert result.stats.cells_computed == 3 * len(q) * len(r)


class TestAdaptiveBandAligner:
    def test_exact_on_similar_pairs(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 300, 0.05, rng)
        gold = FullAligner().compute_score(q, r, config.model).score
        result = AdaptiveBandAligner(width=96).align(q, r, config.model)
        assert result.score == gold
        result.alignment.validate(q, r, config.model)

    def test_linear_work(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 500, 0.05, rng)
        result = AdaptiveBandAligner(width=64).compute_score(q, r,
                                                             config.model)
        assert result.stats.cells_computed <= 64 * (len(q) + 1)

    def test_follows_drift(self, configs):
        """The moving band tracks an indel-shifted diagonal a static
        band of the same width would lose."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(11)
        r = config.alphabet.random(400, rng)
        q = np.concatenate([r[:150], r[190:]])  # 40-char deletion
        gold = FullAligner().compute_score(q, r, config.model).score
        adaptive = AdaptiveBandAligner(width=96).align(q, r, config.model)
        assert not adaptive.failed
        assert adaptive.score == gold

    def test_narrow_band_may_fail_or_degrade(self, configs):
        config = configs["dna-edit"]
        rng = np.random.default_rng(5)
        r = config.alphabet.random(300, rng)
        q = np.concatenate([r[150:], r[:150]])  # scrambled halves
        gold = FullAligner().compute_score(q, r, config.model).score
        result = AdaptiveBandAligner(width=16).align(q, r, config.model)
        assert result.failed or result.score <= gold

    def test_never_beats_gold(self, config, rng):
        q, r = make_pair(config, 150, 0.2, rng)
        gold = FullAligner().compute_score(q, r, config.model).score
        result = AdaptiveBandAligner(width=48).compute_score(
            q, r, config.model)
        if not result.failed:
            assert result.score <= gold

    def test_width_validation(self):
        with pytest.raises(AlignmentError):
            AdaptiveBandAligner(width=1)

    def test_score_matches_align(self, configs, rng):
        config = configs["dna-gap"]
        q, r = make_pair(config, 200, 0.08, rng)
        aligner = AdaptiveBandAligner(width=80)
        assert (aligner.compute_score(q, r, config.model).score
                == aligner.align(q, r, config.model).score)
