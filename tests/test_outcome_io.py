"""Round-trip tests for the stable ``smx-outcome/1`` format.

The checkpoint/resume machinery leans on one property: an outcome
pushed through ``to_document -> json -> from_document -> to_document``
is *bit-identical* to the original document -- counters,
:class:`PairFailure` records, quarantine lists, degradation maps, and
every result row, including NumPy scalar types that must normalize to
plain ints. These tests pin that property for empty, partial, and
fault-bearing outcomes, plus the malformed-input error contract the
CLI's exit-2 path depends on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algorithms.base import AlignerResult, DPStats
from repro.config import standard_configs
from repro.dp.alignment import Alignment
from repro.exec.engine import BatchConfig
from repro.resilience import (
    BatchOutcome,
    ChaosPlan,
    PairFailure,
    ResilienceConfig,
    SupervisedEngine,
    outcome_io,
)
from tests.conftest import make_pair


@pytest.fixture(scope="module")
def config():
    return standard_configs()["dna-edit"]


def _roundtrip(document: dict) -> dict:
    """document -> JSON text -> checkpoint -> document again."""
    recovered = outcome_io.from_document(json.loads(
        json.dumps(document, sort_keys=True)))
    return outcome_io.to_document(
        recovered.outcome, pairs=recovered.pairs,
        complete=recovered.complete, queue=recovered.queue,
        remaining=recovered.remaining, digest=recovered.digest)


def _result(score, cigar=((4, "M"),), failed=False) -> AlignerResult:
    alignment = Alignment(score=score, cigar=list(cigar),
                         query_len=4, ref_len=4, meta={"route": "simd"})
    return AlignerResult(
        alignment=alignment, score=score,
        stats=DPStats(cells_computed=np.int64(16),
                      cells_stored=np.int32(4), blocks=1),
        failed=failed, failure_reason="bad" if failed else "",
        meta={"attempt": np.int64(2)})


class TestRoundTrip:
    def test_empty_outcome(self):
        outcome = BatchOutcome(results=[])
        document = outcome_io.to_document(outcome, pairs=0)
        assert _roundtrip(document) == document
        assert document["complete"] is True
        assert document["completed"] == 0

    def test_partial_outcome_with_queue_and_remaining(self):
        outcome = BatchOutcome(
            results=[_result(np.int64(3)), None, None, None],
            counters={"retries": np.int64(2), "faults.crash": 1})
        queue = [{"indices": [1, 2], "attempt": 2, "rung": "scalar",
                  "rungs": ["vector", "scalar"], "fault": "crash"}]
        document = outcome_io.to_document(
            outcome, pairs=4, complete=False, queue=queue,
            remaining=[[3]], digest="ab" * 16)
        assert _roundtrip(document) == document
        checkpoint = outcome_io.from_document(document)
        assert checkpoint.unsettled() == [1, 2, 3]
        assert not checkpoint.complete
        assert checkpoint.digest == "ab" * 16

    def test_failures_quarantine_and_degraded_bit_identical(self):
        failures = [
            PairFailure(index=np.int64(5), fault="bitflip",
                        error_type="Validation", message="corrupt",
                        attempts=np.int64(6),
                        rungs=("retry", "wide-dtype")),
            PairFailure(index=2, fault="deadline",
                        error_type="LoadShed", message="shed"),
        ]
        outcome = BatchOutcome(
            results=[_result(1)] + [None] * 5,
            failures=failures,
            counters={"quarantined.bitflip": 1, "shed": np.int64(1)},
            degraded={np.int64(0): ("wide-dtype",)})
        document = outcome_io.to_document(outcome, pairs=6)
        again = _roundtrip(document)
        assert again == document
        # Failures come back sorted by index with types normalized.
        assert [row["index"] for row in again["failures"]] == [2, 5]
        assert again["failures"][1]["rungs"] == ["retry", "wide-dtype"]
        assert again["counters"] == {"quarantined.bitflip": 1, "shed": 1}
        assert again["degraded"] == {"0": ["wide-dtype"]}

    def test_numpy_scalars_normalize_to_plain_json(self):
        document = outcome_io.to_document(
            BatchOutcome(results=[_result(np.int64(-7))]), pairs=1)
        text = json.dumps(document)  # would raise on a live np.int64
        row = json.loads(text)["results"]["0"]
        assert row["score"] == -7
        assert row["stats"]["cells_computed"] == 16
        assert row["meta"]["attempt"] == 2

    def test_failed_result_row_roundtrip(self):
        outcome = BatchOutcome(results=[_result(0, failed=True)])
        checkpoint = outcome_io.from_document(
            outcome_io.to_document(outcome, pairs=1))
        restored = checkpoint.outcome.results[0]
        assert restored.failed and restored.failure_reason == "bad"

    def test_engine_outcome_roundtrip(self, config, tmp_path):
        rng = np.random.default_rng(11)
        pairs = [make_pair(config, 20, 0.1, rng) for _ in range(12)]
        engine = SupervisedEngine(
            config, BatchConfig(workers=2),
            ResilienceConfig(backend="thread", validate=True,
                             backoff_base_s=0.0),
            plan=ChaosPlan(seed=9, crash=0.2))
        outcome = engine.run(pairs)
        document = outcome_io.to_document(outcome, pairs=len(pairs))
        path = tmp_path / "outcome.json"
        outcome_io.write(str(path), document)
        loaded = outcome_io.load(str(path))
        assert outcome_io.to_document(
            loaded.outcome, pairs=loaded.pairs) == document


class TestValidation:
    def test_missing_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            outcome_io.from_document({"pairs": 1})

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="unknown schema"):
            outcome_io.from_document({"schema": "smx-job/1"})

    def test_result_index_out_of_range_rejected(self):
        document = outcome_io.to_document(
            BatchOutcome(results=[_result(1)]), pairs=1)
        document["results"]["7"] = document["results"]["0"]
        with pytest.raises(ValueError, match="malformed"):
            outcome_io.from_document(document)

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            outcome_io.load(str(path))

    def test_load_rejects_other_schema(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"schema": "smx-run-report/1"}),
                        encoding="utf-8")
        with pytest.raises(ValueError, match="unknown schema"):
            outcome_io.load(str(path))


class TestDigestAndSummary:
    def test_pairs_digest_orders_and_content(self, config):
        rng = np.random.default_rng(3)
        pairs = [make_pair(config, 16, 0.1, rng) for _ in range(4)]
        digest = outcome_io.pairs_digest(pairs)
        assert digest == outcome_io.pairs_digest(list(pairs))
        assert digest != outcome_io.pairs_digest(pairs[::-1])
        assert digest != outcome_io.pairs_digest(pairs[:3])

    def test_summarize_counts_shed_and_quarantine(self):
        outcome = BatchOutcome(
            results=[_result(1), None, None],
            failures=[
                PairFailure(index=1, fault="crash",
                            error_type="InjectedCrash", message=""),
                PairFailure(index=2, fault="deadline",
                            error_type="LoadShed", message=""),
            ])
        summary = outcome_io.summarize(outcome_io.to_document(
            outcome, pairs=3, complete=False, remaining=[[1, 2]]))
        assert summary["pairs"] == 3
        assert summary["completed"] == 1
        assert summary["fraction"] == pytest.approx(1 / 3)
        assert summary["shed"] == 1
        assert summary["quarantined_by_fault"] == {"crash": 1,
                                                   "deadline": 1}
        assert summary["unsettled"] == 2
        assert not summary["complete"]
