"""Tests for the SMX-2D discrete-event timing simulation."""

import pytest

from repro.core.coprocessor import CoprocParams, CoprocessorSim
from repro.core.engine import EngineParams
from repro.core.worker import BlockJob
from repro.errors import ConfigurationError


def run(jobs, workers=4, **kwargs):
    return CoprocessorSim(CoprocParams(n_workers=workers, **kwargs)).run(
        jobs)


def job_batch(size, count, ew=2, **kwargs):
    return [BlockJob(n=size, m=size, ew=ew, job_id=i, **kwargs)
            for i in range(count)]


class TestBasicInvariants:
    def test_empty_workload(self):
        report = run([])
        assert report.total_cycles == 0
        assert report.engine_utilization == 0.0

    def test_all_tiles_computed(self):
        jobs = job_batch(1000, 4)
        report = run(jobs)
        assert report.tiles_computed == sum(j.total_tiles for j in jobs)

    def test_all_jobs_complete(self):
        report = run(job_batch(500, 7), workers=3)
        assert report.jobs_completed == 7
        assert len(report.job_completion_times) == 7

    def test_engine_never_oversubscribed(self):
        """One tile per cycle: busy cycles can never exceed the span."""
        report = run(job_batch(800, 6))
        assert report.engine_busy_cycles <= report.total_cycles
        assert report.engine_busy_cycles == report.tiles_computed

    def test_utilization_bounded(self):
        report = run(job_batch(1000, 4))
        assert 0.0 < report.engine_utilization <= 1.0
        assert 0.0 < report.port_occupancy <= 1.0

    def test_completion_times_monotone_bounds(self):
        report = run(job_batch(300, 4))
        assert max(report.job_completion_times) <= report.total_cycles

    def test_memory_traffic_counted(self):
        report = run(job_batch(512, 4))
        assert report.lines_loaded > 0
        assert report.lines_stored > 0
        assert report.bytes_transferred == 64 * (report.lines_loaded
                                                 + report.lines_stored)


class TestUtilizationShape:
    """The Fig. 10 behaviour: workers hide bubbles and memory latency."""

    def test_single_worker_leaves_bubbles(self):
        report = run(job_batch(2000, 4), workers=1)
        assert 0.25 < report.engine_utilization < 0.65

    def test_four_workers_near_full(self):
        report = run(job_batch(2000, 8), workers=4)
        assert report.engine_utilization > 0.85

    def test_monotone_in_workers(self):
        utils = []
        for workers in (1, 2, 4, 8):
            report = run(job_batch(1500, 8), workers=workers)
            utils.append(report.engine_utilization)
        assert utils == sorted(utils)

    def test_diminishing_returns_beyond_four(self):
        """Paper Sec. 8.1: beyond 4 workers gains are marginal."""
        u4 = run(job_batch(1500, 8), workers=4).engine_utilization
        u8 = run(job_batch(1500, 8), workers=8).engine_utilization
        assert u8 - u4 < 0.08

    def test_small_blocks_low_utilization(self):
        """100x100 blocks drown in communication (paper Sec. 8.1)."""
        small = run(job_batch(100, 16), workers=4).engine_utilization
        large = run(job_batch(2000, 8), workers=4).engine_utilization
        assert small < large

    def test_port_occupancy_stays_low(self):
        """Paper Sec. 5.1: SMX-2D uses ~25% of the L2 port at most."""
        report = run(job_batch(2000, 8), workers=4)
        assert report.port_occupancy < 0.30


class TestModes:
    def test_alignment_mode_stores_more(self):
        score = run(job_batch(1000, 4))
        align = run(job_batch(1000, 4, store_tile_borders=True))
        assert align.lines_stored > score.lines_stored

    @pytest.mark.parametrize("ew", [2, 4, 6, 8])
    def test_all_element_widths(self, ew):
        report = run(job_batch(320, 4, ew=ew))
        assert report.jobs_completed == 4
        assert report.engine_utilization > 0.3

    def test_prefetch_helps_single_worker(self):
        base = CoprocessorSim(CoprocParams(n_workers=1)).run(
            job_batch(1500, 2))
        pref = CoprocessorSim(CoprocParams(n_workers=1, prefetch=True)).run(
            job_batch(1500, 2))
        assert pref.total_cycles <= base.total_cycles


class TestSteadyStateScaling:
    def test_cells_per_cycle_size_invariant(self):
        """The extrapolation assumption behind simulate_coproc: the
        steady-state throughput of large blocks is size-independent."""
        rates = []
        for size in (1600, 3200):
            jobs = job_batch(size, 4)
            report = run(jobs)
            rates.append(sum(j.cells for j in jobs) / report.total_cycles)
        assert abs(rates[0] - rates[1]) / rates[1] < 0.10

    def test_makespan_additive_in_jobs(self):
        four = run(job_batch(1000, 4)).total_cycles
        eight = run(job_batch(1000, 8)).total_cycles
        assert 1.7 < eight / four < 2.3


class TestParams:
    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            CoprocParams(n_workers=0)

    def test_bad_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            CoprocParams(l2_latency=0)

    def test_peak_rate(self):
        sim = CoprocessorSim(CoprocParams(engine=EngineParams()))
        assert sim.peak_cells_per_cycle(2) == 1024
