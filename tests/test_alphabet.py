"""Tests for sequence alphabets and character encoding."""

import numpy as np
import pytest

from repro.encoding.alphabet import (
    ALPHABETS,
    AMINO_ACIDS,
    ASCII,
    DNA,
    DNA4,
    PROTEIN,
    Alphabet,
)
from repro.errors import EncodingError


class TestDnaAlphabet:
    def test_codes_are_sequential(self):
        assert list(DNA.encode("ACGT")) == [0, 1, 2, 3]

    def test_lowercase_accepted(self):
        assert list(DNA.encode("acgt")) == [0, 1, 2, 3]

    def test_roundtrip(self):
        sequence = "GATTACAGATTACA"
        assert DNA.decode(DNA.encode(sequence)) == sequence

    def test_invalid_character_raises(self):
        with pytest.raises(EncodingError, match="not in alphabet"):
            DNA.encode("ACGN")

    def test_bits(self):
        assert DNA.bits == 2
        assert DNA4.bits == 4

    def test_dna4_same_letters_wider_code(self):
        assert DNA4.letters == DNA.letters
        assert list(DNA4.encode("ACGT")) == [0, 1, 2, 3]

    def test_size(self):
        assert DNA.size == 4


class TestProteinAlphabet:
    def test_all_letters(self):
        codes = PROTEIN.encode("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
        assert list(codes) == list(range(26))

    def test_bits(self):
        assert PROTEIN.bits == 6

    def test_roundtrip(self):
        assert PROTEIN.decode(PROTEIN.encode("WYE")) == "WYE"

    def test_amino_acids_subset(self):
        assert len(AMINO_ACIDS) == 20
        assert set(AMINO_ACIDS) <= set(PROTEIN.letters)


class TestAsciiAlphabet:
    def test_identity_codes(self):
        assert list(ASCII.encode("Az!")) == [ord("A"), ord("z"), ord("!")]

    def test_roundtrip_printable(self):
        text = "Hello, World! 42 #$%"
        assert ASCII.decode(ASCII.encode(text)) == text

    def test_bits(self):
        assert ASCII.bits == 8

    def test_size_covers_all_bytes(self):
        assert ASCII.size == 256

    def test_bytes_input(self):
        assert list(ASCII.encode(b"\x00\xff")) == [0, 255]


class TestRandomGeneration:
    def test_random_respects_alphabet(self, rng):
        codes = DNA.random(1000, rng)
        assert codes.max() < 4
        assert codes.dtype == np.uint8

    def test_random_ascii_printable(self, rng):
        codes = ASCII.random(1000, rng)
        assert codes.min() >= 32
        assert codes.max() < 127

    def test_random_deterministic(self):
        a = DNA.random(100, np.random.default_rng(7))
        b = DNA.random(100, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_random_length(self, rng):
        assert len(PROTEIN.random(123, rng)) == 123


class TestAlphabetValidation:
    def test_too_many_letters_rejected(self):
        with pytest.raises(EncodingError, match="do not fit"):
            Alphabet(name="bad", bits=1, letters="ABC")

    def test_decode_out_of_range(self):
        with pytest.raises(EncodingError, match="out of range"):
            DNA.decode(np.array([7], dtype=np.uint8))

    def test_registry_contains_all(self):
        assert set(ALPHABETS) == {"dna", "dna4", "protein", "ascii"}

    def test_empty_sequence(self):
        assert len(DNA.encode("")) == 0
        assert DNA.decode(np.array([], dtype=np.uint8)) == ""
