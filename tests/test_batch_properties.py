"""Property-based invariants of the batched execution engine.

Hypothesis drives random batches through ``repro.exec`` and checks the
structural properties the engine promises independent of any oracle:
submission order never changes results, batching is exactly the same
as aligning each pair alone, the unit-cost edit score is symmetric,
and widening a band (or X-drop threshold) can only improve heuristic
scores until they reach the exact optimum.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FullAligner
from repro.config import standard_configs
from repro.exec import BatchConfig, BatchEngine

CONFIGS = standard_configs()

NEG = -(1 << 40)


def dna_codes(min_size=0, max_size=48):
    return st.lists(st.integers(0, 3), min_size=min_size,
                    max_size=max_size).map(
        lambda codes: np.asarray(codes, dtype=np.uint8))


def pair_batches(max_pairs=8, max_len=48):
    return st.lists(st.tuples(dna_codes(max_size=max_len),
                              dna_codes(max_size=max_len)),
                    min_size=1, max_size=max_pairs)


def _key(result):
    """Comparable digest of one AlignerResult."""
    cigar = result.alignment.cigar_string if result.alignment else None
    return (result.score, result.failed, result.failure_reason, cigar)


@settings(deadline=None, max_examples=40)
@given(pairs=pair_batches(), config_name=st.sampled_from(sorted(CONFIGS)),
       seed=st.integers(0, 2**32 - 1))
def test_batch_is_order_invariant(pairs, config_name, seed):
    """Shuffling the submission order permutes the results identically:
    no pair's answer depends on its bucket neighbours."""
    config = CONFIGS[config_name]
    batch = BatchConfig(engine="vector", mode="global", traceback=True)
    baseline = BatchEngine(config, batch).run(pairs)
    order = np.random.default_rng(seed).permutation(len(pairs))
    shuffled = BatchEngine(config, batch).run([pairs[i] for i in order])
    for position, original in enumerate(order):
        assert _key(shuffled[position]) == _key(baseline[original])


@settings(deadline=None, max_examples=40)
@given(pairs=pair_batches(max_pairs=6),
       config_name=st.sampled_from(sorted(CONFIGS)))
def test_batch_equals_per_pair_alignment(pairs, config_name):
    """One batched call is exactly the per-pair scalar aligner looped:
    same scores, same CIGARs, pair by pair."""
    config = CONFIGS[config_name]
    batch = BatchConfig(engine="vector", mode="global", traceback=True)
    results = BatchEngine(config, batch).run(pairs)
    aligner = FullAligner()
    for (q, r), result in zip(pairs, results):
        single = aligner.align(q, r, config.model)
        assert result.score == single.score
        assert result.alignment.cigar_string \
            == single.alignment.cigar_string


@settings(deadline=None, max_examples=40)
@given(pairs=pair_batches(max_pairs=6))
def test_edit_score_is_symmetric(pairs):
    """Under the unit-cost edit model, score(q, r) == score(r, q)."""
    config = CONFIGS["dna-edit"]
    batch = BatchConfig(engine="vector", mode="global", traceback=False)
    engine = BatchEngine(config, batch)
    forward = engine.run(pairs)
    backward = engine.run([(r, q) for q, r in pairs])
    for fwd, bwd in zip(forward, backward):
        assert fwd.score == bwd.score


@settings(deadline=None, max_examples=25)
@given(pairs=pair_batches(max_pairs=4, max_len=40),
       config_name=st.sampled_from(sorted(CONFIGS)))
def test_band_widening_is_monotone(pairs, config_name):
    """Widening the band never lowers a banded score, and a full-width
    band reaches the exact optimum."""
    config = CONFIGS[config_name]
    exact = [FullAligner().compute_score(q, r, config.model).score
             for q, r in pairs]
    previous = [NEG] * len(pairs)
    for width in (1, 2, 4, 8, 16, 64):
        batch = BatchConfig(engine="vector", algorithm="banded",
                            band_width=width, traceback=False)
        scores = [r.score if not r.failed else NEG
                  for r in BatchEngine(config, batch).run(pairs)]
        for i, (score, prev) in enumerate(zip(scores, previous)):
            assert score >= prev, (width, i)
            assert score <= exact[i], (width, i)
        previous = scores
    full = BatchConfig(engine="vector", algorithm="banded",
                       band_fraction=1.0, traceback=False)
    final = [r.score for r in BatchEngine(config, full).run(pairs)]
    assert final == exact


@settings(deadline=None, max_examples=25)
@given(pairs=pair_batches(max_pairs=4, max_len=40),
       config_name=st.sampled_from(sorted(CONFIGS)))
def test_xdrop_threshold_widening_is_monotone(pairs, config_name):
    """Raising the X-drop threshold never lowers the score; a huge
    threshold disables pruning and reaches the exact optimum."""
    config = CONFIGS[config_name]
    exact = [FullAligner().compute_score(q, r, config.model).score
             for q, r in pairs]
    previous = [NEG] * len(pairs)
    for threshold in (1, 4, 16, 64, 1 << 30):
        batch = BatchConfig(engine="vector", algorithm="xdrop",
                            xdrop=threshold, traceback=False)
        scores = [r.score if not r.failed else NEG
                  for r in BatchEngine(config, batch).run(pairs)]
        for i, (score, prev) in enumerate(zip(scores, previous)):
            assert score >= prev, (threshold, i)
            assert score <= exact[i], (threshold, i)
        previous = scores
    assert previous == exact
