"""Fault-injection tests: corrupted state must be *detected*, not
silently aligned around.

The SMX dataflow carries redundancy (CIGAR validators, the redsum
identity, delta-range proofs); these tests flip bits in stored state
and check that downstream consumers either raise or produce results
the validators reject -- the property a verification plan would call
"no silent data corruption".
"""

import numpy as np
import pytest

from repro.core.traceback import compute_tile_borders, traceback_with_recompute
from repro.dp.delta import block_deltas, traceback_deltas
from repro.dp.dense import nw_score
from repro.encoding.differential import DeltaShift
from repro.errors import AlignmentError, RangeError, SmxError
from tests.conftest import make_pair


class TestCorruptedBorders:
    def test_corruption_off_the_path_is_harmless(self, configs, rng):
        """A corrupted border in a tile the traceback never visits
        cannot affect the result (only path tiles are recomputed)."""
        config = configs["dna-edit"]
        q, r = make_pair(config, 120, 0.02, rng)
        store = compute_tile_borders(q, r, config.model, config.vl)
        true_score = nw_score(q, r, config.model)
        # A near-identity pair's path hugs the main diagonal; the
        # far-off-diagonal tile (last strip, first column) is unvisited.
        store.dvp_cols[-1][0][:] = 0
        alignment, _ = traceback_with_recompute(store, q, r, config.model)
        assert alignment.score == true_score

    def test_corrupted_path_tile_border_is_detected(self, configs, rng):
        """Wiping the borders of the tile the traceback starts in must
        never yield a clean alignment with the optimal score."""
        config = configs["dna-edit"]
        q, r = make_pair(config, 120, 0.2, rng)
        store = compute_tile_borders(q, r, config.model, config.vl)
        true_score = nw_score(q, r, config.model)
        store.dvp_cols[-1][-1][:] = 0  # traceback's starting tile
        store.dhp_rows[-2][:] = 0
        try:
            alignment, _ = traceback_with_recompute(store, q, r,
                                                    config.model)
        except SmxError:
            return  # detected outright: good
        # rescore() validates CIGAR structure; a structurally valid
        # result must now be suboptimal (score disagreement is exactly
        # what the redsum cross-check would flag).
        assert alignment.score < true_score

    def test_out_of_range_border_rejected_by_shift_check(self, configs):
        config = configs["dna-edit"]
        shift = DeltaShift.for_model(config.model)
        with pytest.raises(RangeError):
            shift.check_range(np.array([config.model.theta + 1]),
                              np.array([0]))

    def test_corrupted_delta_field_degrades_path(self, configs, rng):
        """Zeroed vertical deltas masquerade as 'came from above', so
        the traceback silently takes gap moves -- the resulting path is
        structurally valid but strictly suboptimal, which the
        score-side cross-check (redsum) exposes."""
        config = configs["dna-gap"]
        q, r = make_pair(config, 40, 0.2, rng)
        true_score = nw_score(q, r, config.model)
        block = block_deltas(q, r, config.model)
        block.dvp[10:20, :] = 0
        try:
            cigar, _ = traceback_deltas(block, q, r, config.model)
        except AlignmentError:
            return  # inconsistency detected outright
        from repro.dp.alignment import Alignment
        rescored = Alignment(score=0, cigar=cigar, query_len=len(q),
                             ref_len=len(r)).rescore(q, r, config.model)
        assert rescored < true_score


class TestValidatorsCatchLies:
    def test_wrong_score_claim_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 50, 0.2, rng)
        from repro.algorithms.full import FullAligner
        result = FullAligner().align(q, r, config.model)
        result.alignment.score += 1
        with pytest.raises(AlignmentError, match="stored score"):
            result.alignment.validate(q, r, config.model)

    def test_truncated_cigar_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 50, 0.2, rng)
        from repro.algorithms.full import FullAligner
        result = FullAligner().align(q, r, config.model)
        result.alignment.cigar.pop()
        with pytest.raises(AlignmentError, match="consumed"):
            result.alignment.validate(q, r, config.model)

    def test_recall_stats_reject_superoptimal_claims(self):
        from repro.analysis.metrics import RecallStats
        from repro.errors import ConfigurationError
        stats = RecallStats()
        with pytest.raises(ConfigurationError):
            stats.record(found_score=0, optimal_score=-5)


class TestIsaRangeEnforcement:
    def test_pe_rejects_wide_operands(self):
        from repro.core.pe import pe_datapath
        with pytest.raises(RangeError):
            pe_datapath(5, 0, 0, 2)

    def test_kernel_rejects_wide_borders(self, configs, rng):
        from repro.core.isa import Smx1D, smx1d_block_borders
        from repro.core.registers import SmxState
        config = configs["dna-edit"]
        unit = Smx1D(SmxState.for_config(config))
        q, r = make_pair(config, 8, 0.2, rng)
        with pytest.raises(RangeError):
            smx1d_block_borders(unit, q, r,
                                dvp_in=np.full(len(q), 200),
                                dhp_in=np.zeros(len(r)))

    def test_tile_rejects_oversized_inputs(self, configs, rng):
        from repro.core.tile import compute_tile_bit
        config = configs["dna-gap"]
        q = config.alphabet.random(4, rng)
        with pytest.raises(RangeError):
            compute_tile_bit(q, q, config.model.shifted_table(),
                             config.ew, np.full(4, 99), np.zeros(4))
