"""Tests for the high-level string API and the multicore task scheduler."""

import pytest

from repro.api import PRESETS, align, edit_distance, score, similarity
from repro.config import dna_gap_config
from repro.errors import ConfigurationError
from repro.sim.scheduler import (
    Task,
    multicore_makespan,
    scaling_with_tasks,
    schedule_lpt,
)


class TestHighLevelApi:
    def test_align_global(self):
        alignment = align("GATTACA", "GATTTACA")
        assert alignment.consumed() == (7, 8)
        assert alignment.score == -1

    def test_align_validates_roundtrip(self):
        alignment = align("ACGTACGT", "ACGGTACG")
        assert alignment.columns >= 8

    def test_edit_distance_classic(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("same", "same") == 0

    def test_similarity(self):
        assert similarity("ACGT", "ACGT") == 1.0
        assert similarity("", "") == 1.0
        assert similarity("ACGT", "ACGA") == pytest.approx(0.75)

    def test_local_mode(self):
        alignment = align("TTTTACGTACGTTTTT", "GGACGTACGTGG",
                          preset="dna-gap", mode="local")
        assert alignment.meta["mode"] == "local"
        assert alignment.matches >= 8

    def test_local_mode_requires_positive_scores(self):
        # text preset is edit-model: local would be meaningless.
        with pytest.raises(ConfigurationError):
            align("AAA", "AAA", preset="dna", mode="local")

    def test_semiglobal_mode(self):
        alignment = align("ACGT", "TTTTACGTTTTT", mode="semiglobal")
        assert alignment.score == 0
        assert alignment.meta["mode"] == "semiglobal"

    def test_protein_preset(self):
        value = score("HEAGAWGHEE", "HEAGAWGHEE", preset="protein")
        assert value > 0

    def test_gap_preset_local(self):
        alignment = align("ACGTACGT", "ggACGTACGTgg".upper(),
                          preset="dna-gap", mode="local")
        assert alignment.matches == 8

    def test_config_passthrough(self):
        config = dna_gap_config(match=1, mismatch=-1, gap=-1)
        assert score("ACGT", "ACGT", preset=config) == 4

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="unknown preset"):
            align("A", "C", preset="klingon")

    def test_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="unknown mode"):
            align("A", "C", mode="diagonal")

    def test_edit_distance_rejects_non_edit_preset(self):
        with pytest.raises(ConfigurationError, match="edit-distance"):
            edit_distance("A", "C", preset="protein")

    def test_presets_cover_paper_configs(self):
        assert {"dna", "dna-gap", "protein", "ascii"} <= set(PRESETS)


class TestScheduler:
    def test_single_core_is_sum(self):
        tasks = [Task(cycles=c, task_id=i)
                 for i, c in enumerate((10, 20, 30))]
        report = multicore_makespan(tasks, 1)
        assert report.makespan == 60
        assert report.speedup == 1.0

    def test_lpt_balances_uniform_tasks(self):
        tasks = [Task(cycles=10, task_id=i) for i in range(16)]
        report = multicore_makespan(tasks, 4)
        assert report.makespan == 40
        assert report.imbalance == 1.0
        assert report.efficiency == 1.0

    def test_one_huge_task_limits_speedup(self):
        tasks = [Task(cycles=100)] + [Task(cycles=1) for _ in range(7)]
        report = multicore_makespan(tasks, 8)
        assert report.makespan == 100
        assert report.speedup < 1.1
        assert report.imbalance > 5

    def test_lpt_assignment_covers_all_tasks(self):
        tasks = [Task(cycles=float(c + 1)) for c in range(13)]
        assignments = schedule_lpt(tasks, 4)
        flat = sorted(i for bucket in assignments for i in bucket)
        assert flat == list(range(13))

    def test_dram_bound_detection(self):
        tasks = [Task(cycles=10, dram_bytes=1e9) for _ in range(8)]
        report = multicore_makespan(tasks, 8)
        assert report.dram_bound
        assert report.makespan > 10

    def test_scaling_curve_monotone(self):
        tasks = [Task(cycles=float(c)) for c in (35, 20, 18, 11, 9, 7,
                                                 5, 3)]
        reports = scaling_with_tasks(tasks)
        speedups = [r.speedup for r in reports]
        assert speedups == sorted(speedups)
        assert all(r.speedup <= r.n_cores for r in reports)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Task(cycles=0)
        with pytest.raises(ConfigurationError):
            multicore_makespan([], 2)
        with pytest.raises(ConfigurationError):
            schedule_lpt([Task(cycles=1)], 0)
