"""Tests for SMX-1D instruction-trace generation and replay."""

import numpy as np
import pytest

from repro.core.trace import (
    DH_BASE,
    Instruction,
    TraceExecutor,
    block_sweep_trace,
)
from repro.dp.delta import block_border_deltas
from repro.errors import SimulationError
from tests.conftest import make_pair


class TestTraceGeneration:
    def test_instruction_counts(self, configs, rng):
        """Per column: csrw+li, ld, smx.v, smx.h, sd, mv = 7 ops."""
        config = configs["dna-edit"]
        q, r = make_pair(config, 64, 0.2, rng, m=10)
        trace = block_sweep_trace(config, q, r)
        strips = 2
        assert trace.count("smx.v") == strips * 10
        assert trace.count("smx.h") == strips * 10
        assert trace.count("csrw") == strips * (10 + 1)
        assert trace.count("smx.redsum") == 1

    def test_render_is_assembly_like(self, configs, rng):
        config = configs["dna-gap"]
        q, r = make_pair(config, 8, 0.2, rng, m=4)
        listing = block_sweep_trace(config, q, r).render()
        assert "smx.v   x4, x2, x3" in listing
        assert "csrw    smx_query" in listing
        assert "# dh' in" in listing

    def test_instruction_render_variants(self):
        assert "li      x1, 0x2a" in Instruction("li", rd="x1",
                                                 imm=42).render()
        assert Instruction("mv", rd="x2", rs1="x4").render().startswith(
            "mv")
        assert "4096(x0)" in Instruction("ld", rd="x3",
                                         imm=DH_BASE).render()


class TestTraceReplay:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    def test_replay_matches_delta_kernel(self, configs, name, rng):
        """Executing the literal instruction stream reproduces the
        block's output borders -- the strongest ISA-level check."""
        config = configs[name]
        q, r = make_pair(config, 37, 0.25, rng, m=23)
        trace = block_sweep_trace(config, q, r)
        executor = TraceExecutor(config)
        executor.execute(trace)
        gold_v, gold_h = block_border_deltas(q, r, config.model)
        assert np.array_equal(executor.dh_row(len(r)), gold_h)
        # The last strip's dv' register holds the tail of the right
        # border; redsum of it lives in x6.
        tail = len(q) - (len(q) - 1) // config.vl * config.vl
        assert executor.read("x6") == int(gold_v[-tail:].sum())

    def test_smx_counters_track_stream(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 32, 0.2, rng, m=6)
        trace = block_sweep_trace(config, q, r)
        executor = TraceExecutor(config)
        executor.execute(trace)
        assert executor.unit.counters.smx_v == trace.count("smx.v")
        assert executor.unit.counters.csr_writes == trace.count("csrw")

    def test_unwritten_register_read_rejected(self, configs):
        executor = TraceExecutor(configs["dna-edit"])
        from repro.core.trace import Trace
        trace = Trace()
        trace.append(Instruction("mv", rd="x1", rs1="x9"))
        with pytest.raises(SimulationError, match="unwritten"):
            executor.execute(trace)

    def test_unknown_op_rejected(self, configs):
        executor = TraceExecutor(configs["dna-edit"])
        from repro.core.trace import Trace
        trace = Trace()
        trace.append(Instruction("fma", rd="x1", rs1="x0", rs2="x0"))
        with pytest.raises(SimulationError, match="unknown traced op"):
            executor.execute(trace)
