"""Tests for delta-domain DP-block kernels and delta traceback."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.delta import (
    block_border_deltas,
    block_deltas,
    default_borders,
    traceback_deltas,
)
from repro.dp.dense import nw_matrix
from repro.dp.traceback import traceback_full
from repro.encoding.differential import shifted_step
from repro.errors import AlignmentError
from tests.conftest import make_pair


class TestBlockDeltas:
    def test_cellwise_recurrence(self, config, rng):
        """Every interior cell satisfies Eq. 5-6 exactly."""
        q, r = make_pair(config, 18, 0.3, rng, m=23)
        block = block_deltas(q, r, config.model)
        sp = config.model.shifted_table()
        for i in range(1, len(q) + 1):
            for j in range(1, len(r) + 1):
                dvp, dhp = shifted_step(int(block.dvp[i - 1, j - 1]),
                                        int(block.dhp[i - 1, j - 1]),
                                        int(sp[q[i - 1], r[j - 1]]))
                assert block.dvp[i - 1, j] == dvp
                assert block.dhp[i, j - 1] == dhp

    def test_range_bound(self, config, rng):
        """All shifted deltas lie in [0, theta] (paper Sec. 4.1)."""
        q, r = make_pair(config, 60, 0.3, rng)
        block = block_deltas(q, r, config.model)
        theta = config.model.theta
        assert 0 <= block.dvp.min() and block.dvp.max() <= theta
        assert 0 <= block.dhp.min() and block.dhp.max() <= theta

    def test_range_bound_with_borders(self, config, rng):
        theta = config.model.theta
        q, r = make_pair(config, 25, 0.3, rng, m=30)
        dvp_in = rng.integers(0, theta + 1, 25)
        dhp_in = rng.integers(0, theta + 1, 30)
        block = block_deltas(q, r, config.model, dvp_in=dvp_in,
                             dhp_in=dhp_in)
        assert block.dvp.max() <= theta and block.dvp.min() >= 0
        assert block.dhp.max() <= theta and block.dhp.min() >= 0

    def test_default_borders_are_zero(self):
        dvp, dhp = default_borders(4, 6)
        assert not dvp.any() and not dhp.any()
        assert len(dvp) == 4 and len(dhp) == 6

    def test_border_properties(self, configs, rng):
        config = configs["dna-gap"]
        q, r = make_pair(config, 10, 0.2, rng, m=12)
        block = block_deltas(q, r, config.model)
        assert np.array_equal(block.dvp_left, block.dvp[:, 0])
        assert np.array_equal(block.dvp_right, block.dvp[:, -1])
        assert np.array_equal(block.dhp_top, block.dhp[0])
        assert np.array_equal(block.dhp_bottom, block.dhp[-1])
        assert block.n == 10 and block.m == 12

    def test_borders_only_matches_full(self, config, rng):
        q, r = make_pair(config, 35, 0.25, rng, m=28)
        theta = config.model.theta
        dvp_in = rng.integers(0, theta + 1, 35)
        dhp_in = rng.integers(0, theta + 1, 28)
        block = block_deltas(q, r, config.model, dvp_in, dhp_in)
        dvp_out, dhp_out = block_border_deltas(q, r, config.model,
                                               dvp_in, dhp_in)
        assert np.array_equal(dvp_out, block.dvp_right)
        assert np.array_equal(dhp_out, block.dhp_bottom)

    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 9999), n=st.integers(1, 30),
           m=st.integers(1, 30))
    def test_block_composition(self, configs, seed, n, m):
        """Computing one block equals computing its halves chained via
        borders -- the composability SMX-2D tiles rely on."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(2 * m, rng)
        whole_v, whole_h = block_border_deltas(q, r, config.model)
        left_v, left_h = block_border_deltas(q, r[:m], config.model)
        right_v, right_h = block_border_deltas(q, r[m:], config.model,
                                               dvp_in=left_v)
        assert np.array_equal(whole_v, right_v)
        assert np.array_equal(whole_h, np.concatenate([left_h, right_h]))


class TestDeltaTraceback:
    def test_matches_gold_cigar(self, config, rng):
        q, r = make_pair(config, 45, 0.3, rng, m=40)
        matrix = nw_matrix(q, r, config.model)
        gold_cigar, gold_path = traceback_full(matrix, q, r, config.model)
        block = block_deltas(q, r, config.model)
        cigar, path = traceback_deltas(block, q, r, config.model)
        assert cigar == gold_cigar
        assert path == gold_path

    def test_until_edge_stops_at_boundary(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 20, 0.3, rng)
        block = block_deltas(q, r, config.model)
        _, path = traceback_deltas(block, q, r, config.model,
                                   until_edge=True)
        first = path[0]
        assert first[0] == 0 or first[1] == 0

    def test_start_cell(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 15, 0.2, rng)
        block = block_deltas(q, r, config.model)
        cigar, path = traceback_deltas(block, q, r, config.model,
                                       start=(5, 5))
        assert path[-1] == (5, 5)
        assert path[0] == (0, 0)

    def test_invalid_start_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 10, 0.2, rng)
        block = block_deltas(q, r, config.model)
        with pytest.raises(AlignmentError, match="outside block"):
            traceback_deltas(block, q, r, config.model, start=(11, 5))

    def test_pure_gap_rows(self, configs):
        """A 0-width start forces a vertical run."""
        config = configs["dna-edit"]
        rng = np.random.default_rng(1)
        q = config.alphabet.random(6, rng)
        r = config.alphabet.random(6, rng)
        block = block_deltas(q, r, config.model)
        cigar, _ = traceback_deltas(block, q, r, config.model,
                                    start=(6, 0))
        assert cigar == [(6, "I")]
