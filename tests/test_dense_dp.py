"""Tests for the gold dense DP kernel against a brute-force oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dp.dense import (
    nw_block_borders,
    nw_last_row,
    nw_matrix,
    nw_score,
)
from repro.errors import AlignmentError
from tests.conftest import make_pair


def brute_force_matrix(q, r, model, dv_in=None, dh_in=None):
    """Direct cell-by-cell evaluation of Eq. 1-2 (the oracle)."""
    n, m = len(q), len(r)
    matrix = np.zeros((n + 1, m + 1), dtype=np.int64)
    for i in range(1, n + 1):
        matrix[i, 0] = matrix[i - 1, 0] + (dv_in[i - 1] if dv_in is not None
                                           else model.gap_i)
    for j in range(1, m + 1):
        matrix[0, j] = matrix[0, j - 1] + (dh_in[j - 1] if dh_in is not None
                                           else model.gap_d)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            matrix[i, j] = max(
                matrix[i - 1, j - 1] + model.substitution(int(q[i - 1]),
                                                          int(r[j - 1])),
                matrix[i - 1, j] + model.gap_i,
                matrix[i, j - 1] + model.gap_d,
            )
    return matrix


class TestAgainstBruteForce:
    @pytest.mark.parametrize("n,m", [(1, 1), (1, 20), (20, 1), (13, 17),
                                     (40, 40)])
    def test_matrix_matches_oracle(self, config, rng, n, m):
        q, r = make_pair(config, n, 0.3, rng, m=m)
        expected = brute_force_matrix(q, r, config.model)
        assert np.array_equal(nw_matrix(q, r, config.model), expected)

    @settings(deadline=None, max_examples=20)
    @given(n=st.integers(1, 25), m=st.integers(1, 25),
           seed=st.integers(0, 10_000))
    def test_property_random_pairs(self, configs, n, m, seed):
        config = configs["dna-gap"]
        rng = np.random.default_rng(seed)
        q = config.alphabet.random(n, rng)
        r = config.alphabet.random(m, rng)
        expected = brute_force_matrix(q, r, config.model)
        assert np.array_equal(nw_matrix(q, r, config.model), expected)

    def test_custom_borders(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 12, 0.2, rng, m=15)
        dv_in = rng.integers(-1, 2, 12)
        dh_in = rng.integers(-1, 2, 15)
        expected = brute_force_matrix(q, r, config.model, dv_in, dh_in)
        got = nw_matrix(q, r, config.model, dv_in=dv_in, dh_in=dh_in)
        assert np.array_equal(got, expected)


class TestEquivalentEntryPoints:
    def test_score_equals_matrix_corner(self, config, rng):
        q, r = make_pair(config, 50, 0.2, rng)
        matrix = nw_matrix(q, r, config.model)
        assert nw_score(q, r, config.model) == matrix[-1, -1]

    def test_last_row_equals_matrix_row(self, config, rng):
        q, r = make_pair(config, 30, 0.25, rng, m=44)
        matrix = nw_matrix(q, r, config.model)
        assert np.array_equal(nw_last_row(q, r, config.model), matrix[-1])

    def test_block_borders_match_matrix(self, config, rng):
        q, r = make_pair(config, 25, 0.25, rng, m=31)
        matrix = nw_matrix(q, r, config.model)
        dv_out, dh_out = nw_block_borders(q, r, config.model)
        assert np.array_equal(dv_out, matrix[1:, -1] - matrix[:-1, -1])
        assert np.array_equal(dh_out, matrix[-1, 1:] - matrix[-1, :-1])


class TestEdgeValidation:
    def test_max_cells_guard(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 100, 0.1, rng)
        with pytest.raises(AlignmentError, match="max_cells"):
            nw_matrix(q, r, config.model, max_cells=100)

    def test_border_shape_mismatch(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 10, 0.1, rng)
        with pytest.raises(AlignmentError, match="do not match"):
            nw_matrix(q, r, config.model, dv_in=np.zeros(3),
                      dh_in=np.zeros(10))

    def test_identity_alignment_scores_matches(self, config, rng):
        q = config.alphabet.random(30, rng)
        score = nw_score(q, q, config.model)
        expected = sum(config.model.substitution(int(c), int(c)) for c in q)
        assert score == expected

    def test_empty_query_pure_gaps(self, config, rng):
        r = config.alphabet.random(8, rng)
        score = nw_score(np.array([], dtype=np.uint8), r, config.model)
        assert score == 8 * config.model.gap_d

    def test_mutated_pair_scores_below_identity(self, configs, rng):
        """Under the edit model the identity alignment is optimal (0);
        any mutated pair scores strictly no better."""
        config = configs["dna-edit"]
        from repro.workloads.synthetic import ONT_NANOPORE, mutate
        r = config.alphabet.random(200, rng)
        q, edits = mutate(r, ONT_NANOPORE, config.alphabet, rng)
        assert nw_score(r, r, config.model) == 0
        score = nw_score(q, r, config.model)
        assert score <= 0
        # The edit distance is bounded by the number of applied edits.
        assert -score <= 2 * max(1, edits)
