"""Cross-process trace stitching and exact percentile merging.

Two acceptance properties from the observability tentpole live here:

- a sharded run's worker spans stitch into ONE well-formed Chrome
  trace on the parent timeline (worker tracks named after their shard
  or unit, every span stamped with the run id), and
- the parent's merged latency digests answer percentiles
  **bit-identically** to a single worker observing the union of all
  samples -- verified on a >=256-pair sharded run against both a
  single-worker run and an offline union digest.
"""

import numpy as np
import pytest

from repro.config import dna_edit_config
from repro.exec.engine import BatchConfig, BatchEngine
from repro.obs import Observability, child_context, new_run_id
from repro.obs.digest import LatencyDigest


def _pairs(count, lengths=(16, 24, 32, 48), seed=7):
    """Pairs of *varying* sizes so cell-count percentiles are
    non-trivial (not one spike)."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(count):
        n = lengths[i % len(lengths)]
        m = lengths[(i + 1) % len(lengths)]
        out.append((rng.integers(0, 4, n, dtype=np.uint8),
                    rng.integers(0, 4, m, dtype=np.uint8)))
    return out


def _chrome_processes(doc):
    return {e["args"]["name"] for e in doc["traceEvents"]
            if e.get("ph") == "M" and e["name"] == "process_name"}


def _fell_back(ctx):
    """True when the process pool was unavailable and shards ran
    inline (sandboxes without /dev/shm): results and metrics are
    identical, but there are no worker processes to stitch."""
    snapshot = ctx.metrics.snapshot()
    return snapshot.get("exec.shard_fallbacks", 0) > 0


class TestCollectorStitching:
    def test_worker_spans_land_on_parent_timeline(self):
        parent = Observability.enabled_context()
        run_id = new_run_id()
        trace = child_context(parent.tracer, run_id, "shard0",
                              parent_span="exec.shard")
        assert trace is not None
        assert trace.run_id == run_id
        worker = Observability.collector(trace=trace)
        with worker.tracer.host_span("work.phase", pairs=3):
            pass
        parent.merge_state(worker.export_state())
        doc = parent.tracer.to_chrome()
        # The worker's own "host" track was renamed to its label...
        assert "shard0" in _chrome_processes(doc)
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert [s["name"] for s in spans] == ["work.phase"]
        # ...its args survived, and the run id was stamped on merge.
        assert spans[0]["args"]["pairs"] == 3
        assert spans[0]["args"]["run_id"] == run_id
        # The shifted timestamp is on the parent clock: non-negative
        # and no further out than "now".
        assert 0.0 <= spans[0]["ts"] <= parent.tracer.now_us()

    def test_disabled_parent_tracer_yields_no_context(self):
        assert child_context(None, "r", "w") is None
        disabled = Observability.disabled()
        assert child_context(disabled.tracer, "r", "w") is None

    def test_collector_without_trace_exports_no_trace(self):
        worker = Observability.collector()
        worker.metrics.counter("x").inc()
        state = worker.export_state()
        assert "trace" not in state

    def test_metrics_ride_along_with_trace(self):
        parent = Observability.enabled_context()
        trace = child_context(parent.tracer, new_run_id(), "u0-3.a1")
        worker = Observability.collector(trace=trace)
        worker.metrics.distribution("lat_us").observe(25.0)
        parent.merge_state(worker.export_state())
        merged = parent.metrics.snapshot()["lat_us"]
        assert merged["count"] == 1
        assert merged["p50"] == 25.0


class TestShardedRunStitching:
    @pytest.fixture(scope="class")
    def sharded(self):
        config = dna_edit_config()
        pairs = _pairs(64)
        ctx = Observability.enabled_context()
        results = BatchEngine(config, BatchConfig(workers=4),
                              obs=ctx).run(pairs)
        return config, pairs, ctx, results

    def test_one_stitched_trace_per_run(self, sharded):
        _, _, ctx, _ = sharded
        if _fell_back(ctx):
            pytest.skip("process pool unavailable; shards ran inline")
        doc = ctx.tracer.to_chrome()
        processes = _chrome_processes(doc)
        assert {"shard0", "shard1", "shard2", "shard3"} <= processes
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        # Every span of the run carries the same run id: the parent's
        # exec.shard spans carry it natively, worker spans by stamping.
        run_ids = {s["args"]["run_id"] for s in spans
                   if "run_id" in s.get("args", {})}
        assert len(run_ids) == 1
        shard_spans = [s for s in spans if s["name"] == "exec.shard"]
        assert len(shard_spans) == 4

    def test_merged_digest_matches_single_worker_bit_for_bit(
            self, sharded):
        """ACCEPTANCE: >=256-pair sharded run's parent-merged digest
        percentiles are bit-identical to the offline union."""
        config = dna_edit_config()
        pairs = _pairs(256)

        sharded_ctx = Observability.enabled_context()
        BatchEngine(config, BatchConfig(workers=4),
                    obs=sharded_ctx).run(pairs)
        single_ctx = Observability.enabled_context()
        BatchEngine(config, BatchConfig(workers=1),
                    obs=single_ctx).run(pairs)

        key = "exec.pair_cells{engine=vector}"
        merged = sharded_ctx.metrics.snapshot()[key]
        union = single_ctx.metrics.snapshot()[key]
        # Exact across the process boundary: count, extremes, every
        # percentile -- and the total too, because cell counts are
        # integers (exact float sums below 2**53).
        assert merged == union
        assert merged["count"] == 256

        # And against a digest built offline from first principles.
        offline = LatencyDigest()
        offline.observe_many(float(len(q) * len(r)) for q, r in pairs)
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert offline.quantile(q) is not None
        assert merged["p50"] == offline.quantile(0.5)
        assert merged["p90"] == offline.quantile(0.9)
        assert merged["p99"] == offline.quantile(0.99)
        assert merged["min"] == offline.min
        assert merged["max"] == offline.max
        # Varying pair sizes: the percentiles are a real spread.
        assert merged["min"] < merged["p50"] < merged["max"]

    def test_sharded_results_unchanged_by_observability(self, sharded):
        config, pairs, _, observed = sharded
        plain = BatchEngine(config, BatchConfig(workers=1)).run(pairs)
        assert [r.score for r in observed] == [r.score for r in plain]


class TestSupervisedRunStitching:
    def _run(self, backend="process"):
        from repro.resilience import (
            ChaosPlan,
            ResilienceConfig,
            SupervisedEngine,
        )
        config = dna_edit_config()
        ctx = Observability.enabled_context()
        policy = ResilienceConfig(backend=backend, backoff_base_s=0.0,
                                  validate=True)
        plan = ChaosPlan(crash=0.15, seed=5)
        outcome = SupervisedEngine(config, BatchConfig(workers=2),
                                   policy, obs=ctx,
                                   plan=plan).run(_pairs(16, seed=9))
        return ctx, outcome

    def test_retried_units_stitch_with_attempt_labels(self):
        ctx, _ = self._run()
        doc = ctx.tracer.to_chrome()
        processes = _chrome_processes(ctx.tracer.to_chrome())
        workers = {p for p in processes if p.startswith("u")}
        if not workers:
            pytest.skip("process pool unavailable; units ran inline")
        # Worker tracks are unit labels: uSTART-STOP.aATTEMPT.
        import re
        assert all(re.fullmatch(r"u\d+-\d+\.a\d+", w) for w in workers)
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        run_ids = {s["args"]["run_id"] for s in spans
                   if "run_id" in s.get("args", {})}
        assert len(run_ids) == 1

    def test_chaos_run_deterministic_under_fixed_seed(self):
        ctx_a, outcome_a = self._run()
        ctx_b, outcome_b = self._run()
        assert dict(outcome_a.counters) == dict(outcome_b.counters)
        assert [f.index for f in outcome_a.failures] == \
            [f.index for f in outcome_b.failures]

        def span_names(ctx):
            return sorted(e["name"] for e in
                          ctx.tracer.to_chrome()["traceEvents"]
                          if e.get("ph") == "X")
        assert span_names(ctx_a) == span_names(ctx_b)
