"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestAlignCommand:
    def test_align_basic(self, capsys):
        assert main(["align", "ACGTACGT", "ACGTTCGT"]) == 0
        out = capsys.readouterr().out
        assert "score : -1" in out
        assert "cigar :" in out

    def test_align_with_timing(self, capsys):
        assert main(["align", "ACGT" * 10, "ACGT" * 10, "--timing"]) == 0
        out = capsys.readouterr().out
        assert "smx" in out and "simd" in out

    def test_align_protein_config(self, capsys):
        assert main(["align", "--config", "protein", "HEAGAWGHEE",
                     "PAWHEAE"]) == 0
        assert "score" in capsys.readouterr().out

    def test_align_ascii_config(self, capsys):
        assert main(["align", "--config", "ascii", "kitten",
                     "sitting"]) == 0
        out = capsys.readouterr().out
        assert "score : -3" in out  # classic Levenshtein example

    def test_invalid_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "--config", "nope", "A",
                                       "C"])


class TestSimulateCommand:
    def test_simulate_defaults(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4"]) == 0
        out = capsys.readouterr().out
        assert "engine utilization" in out
        assert "L2 port occupancy" in out

    def test_simulate_alignment_mode(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--alignment-mode"]) == 0
        assert "alignment" in capsys.readouterr().out

    def test_simulate_worker_override(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--workers", "1"]) == 0

    def test_simulate_trace_and_metrics_outputs(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--trace-out", str(trace_path),
                     "--metrics-json", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out and "metrics written" in out

        trace = json.loads(trace_path.read_text())
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert spans
        engine_total = sum(e["dur"] for e in spans
                           if e.get("cat") == "engine")

        report = json.loads(metrics_path.read_text())
        assert report["schema"].startswith("smx-run-report/")
        assert report["params"]["blocks"] == 4
        coproc = report["coproc_report"]
        # Trace, metrics, and the printed report must agree.
        assert engine_total == pytest.approx(coproc["engine_busy_cycles"])
        assert report["metrics"]["coproc.tiles_computed"] == \
            coproc["tiles_computed"]
        assert report["metrics"]["coproc.total_cycles"] == \
            coproc["total_cycles"]


class TestAreaCommand:
    def test_area_table(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "SMX-1D unit" in out
        assert "0.0152" in out
        assert "mW" in out

    def test_area_worker_override(self, capsys):
        assert main(["area", "--workers", "2"]) == 0
        assert "2 x" in capsys.readouterr().out


class TestAlignObsOutputs:
    def test_align_trace_and_metrics(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.json"
        assert main(["align", "ACGTACGT", "ACGTTCGT",
                     "--trace-out", str(trace_path),
                     "--metrics-json", str(metrics_path)]) == 0
        report = json.loads(metrics_path.read_text())
        assert report["name"] == "align"
        assert report["result"]["cells_computed"] == 64
        assert report["metrics"]["system.alignments"] == 1
        trace = json.loads(trace_path.read_text())
        host = [e for e in trace["traceEvents"]
                if e.get("cat") == "host"]
        assert any(e["name"] == "system.align" for e in host)


class TestAlignBatchCommand:
    def test_batch_happy_path(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("# comment line\n\nGATTACA GATTTACA\n"
                         "ACGTACGT ACGTACGA\n")
        assert main(["align", "--batch", str(batch)]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert len(lines) == 2  # comments and blanks skipped
        for line in lines:
            score, cigar, query, reference = line.split("\t")
            int(score)  # first column is a numeric score
        assert "2 pairs" in captured.err

    def test_malformed_line_is_a_friendly_error(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\nACGTACGT\n")
        assert main(["align", "--batch", str(batch)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "expected 'QUERY REFERENCE'" in err
        assert ":2:" in err  # points at the offending line
        assert "Traceback" not in err

    def test_truncated_pair_bad_character(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATT?CA\n")
        assert main(["align", "--batch", str(batch)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err

    def test_missing_batch_file(self, tmp_path, capsys):
        assert main(["align", "--batch",
                     str(tmp_path / "nope.txt")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")

    def test_bad_chaos_spec_rejected(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\n")
        assert main(["align", "--batch", str(batch),
                     "--chaos", "meteor=0.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "meteor" in err

    def test_bad_deadline_rejected(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\n")
        assert main(["align", "--batch", str(batch),
                     "--deadline", "-1"]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_resilient_batch_matches_plain(self, tmp_path, capsys):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\nACGTACGT ACGTACGA\n")
        assert main(["align", "--batch", str(batch)]) == 0
        plain = capsys.readouterr().out
        assert main(["align", "--batch", str(batch),
                     "--resilient"]) == 0
        supervised = capsys.readouterr().out
        assert supervised == plain


class TestStatsCommand:
    def test_stats_pretty_prints_report(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--metrics-json", str(metrics_path)]) == 0
        capsys.readouterr()
        assert main(["stats", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "report  : simulate" in out
        assert "coproc.tiles_computed" in out
        assert "blocks=4" in out

    def test_stats_rejects_non_report(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text('{"foo": 1}')
        assert main(["stats", str(path)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert err.count("\n") == 1  # one-line message, no traceback

    def test_stats_missing_file_exits_2(self, capsys):
        assert main(["stats", "/nonexistent/report.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_malformed_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert main(["stats", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_prints_resilience_counters(self, tmp_path, capsys):
        from repro.obs import reports as obs_reports
        report = obs_reports.run_report(
            "align-batch", params={}, metrics={},
            extra={"resilience": {
                "counters": {"retries": 3, "faults.crash": 2},
                "failures": [{"index": 1, "fault": "crash"}]}})
        path = tmp_path / "report.json"
        obs_reports.write_json(report, str(path))
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "retries" in out
        assert "faults.crash" in out
        assert "failed pairs" in out


class TestAlignTelemetryOutputs:
    def _batch(self, tmp_path, lines=4):
        batch = tmp_path / "pairs.txt"
        batch.write_text("GATTACA GATTTACA\nACGTACGT ACGTACGA\n" * lines)
        return batch

    def test_profile_and_cost_outputs(self, tmp_path, capsys):
        batch = self._batch(tmp_path)
        profile = tmp_path / "flame.folded"
        cost = tmp_path / "cost.json"
        assert main(["align", "--batch", str(batch),
                     "--profile-out", str(profile),
                     "--profile-unit", "cells",
                     "--cost-out", str(cost)]) == 0
        capsys.readouterr()
        folded = profile.read_text().strip().splitlines()
        assert folded
        for line in folded:
            path, value = line.rsplit(" ", 1)
            assert int(value) > 0
        table = json.loads(cost.read_text())
        assert table["seconds_per_cell"] > 0
        assert len(table["pairs"]) == 8
        assert all(row["cells"] > 0 for row in table["pairs"])

    def test_events_out_and_top(self, tmp_path, capsys):
        batch = self._batch(tmp_path)
        events = tmp_path / "events.jsonl"
        assert main(["align", "--batch", str(batch),
                     "--events-out", str(events)]) == 0
        capsys.readouterr()
        lines = [json.loads(line) for line
                 in events.read_text().strip().splitlines()]
        kinds = [e["kind"] for e in lines]
        assert kinds[0] == "stream_start"
        assert "batch_start" in kinds and "batch_end" in kinds
        assert main(["top", str(events)]) == 0
        out = capsys.readouterr().out
        assert "8 pairs" in out
        assert "status  : complete" in out
        assert "batch_start" in out

    def test_progress_prints_to_stderr(self, tmp_path, capsys):
        batch = self._batch(tmp_path)
        assert main(["align", "--batch", str(batch),
                     "--progress"]) == 0
        err = capsys.readouterr().err
        assert "[progress " in err

    def test_top_missing_file_exits_2(self, capsys):
        assert main(["top", "/nonexistent/events.jsonl"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_top_malformed_events_exits_2(self, tmp_path, capsys):
        # Interior corruption (a bad line before a good one) fails by
        # default; a lone truncated final line needs --strict to fail.
        path = tmp_path / "events.jsonl"
        path.write_text('{nope\n{"kind": "run_end"}\n')
        assert main(["top", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_top_truncated_tail_tolerated(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "progress", "t": 1.0}\n{"kind": "run')
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 truncated line(s) skipped" in out
        assert main(["top", "--strict", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestMonitorAndFleetCli:
    def _events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        lines = [
            {"seq": 1, "t": 0.0, "kind": "run_start", "pairs": 4,
             "backend": "thread", "run_id": "r1"},
            {"seq": 2, "t": 0.1, "kind": "shard_done", "shard": 0,
             "pairs": 4, "elapsed_s": 0.05},
            {"seq": 3, "t": 0.2, "kind": "job_done", "job_id": "a-0",
             "tenant": "acme", "elapsed_s": 0.2},
            {"seq": 4, "t": 0.3, "kind": "queue", "depth": 2,
             "tenants": {"acme": 2}},
            {"seq": 5, "t": 0.4, "kind": "run_end", "pairs": 4,
             "failures": 0, "run_id": "r1"},
        ]
        path.write_text("".join(json.dumps(e) + "\n" for e in lines))
        return path

    def test_monitor_once_missing_file_exits_2(self, capsys):
        assert main(["monitor", "--once",
                     "/nonexistent/events.jsonl"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_monitor_once_empty_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        assert main(["monitor", "--once", str(path)]) == 2
        err = capsys.readouterr().err
        assert "no events" in err
        assert len(err.strip().splitlines()) == 1

    def test_monitor_once_json(self, tmp_path, capsys):
        path = self._events(tmp_path)
        assert main(["monitor", "--once", "--json", str(path)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["events"] == 5
        assert snapshot["ended"] is True
        assert snapshot["queue_depth"] == 2
        assert snapshot["queue_tenants"] == {"acme": 2}

    def test_monitor_once_panel_shows_queue(self, tmp_path, capsys):
        path = self._events(tmp_path)
        assert main(["monitor", "--once", str(path)]) == 0
        out = capsys.readouterr().out
        assert "queue    depth=2" in out

    def test_top_json(self, tmp_path, capsys):
        path = self._events(tmp_path)
        assert main(["top", "--json", str(path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["events"] == 5
        assert document["by_kind"]["shard_done"] == 1
        assert "shard_done" in document["latencies"]

    def test_fleet_once(self, tmp_path, capsys):
        path = self._events(tmp_path)
        assert main(["fleet", "--once", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tenant acme" in out
        assert "done=1" in out

    def test_fleet_once_json(self, tmp_path, capsys):
        path = self._events(tmp_path)
        assert main(["fleet", "--once", "--json", str(path)]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["tenants"]["acme"]["jobs"]["done"] == 1
        assert snapshot["queue_depth"] == 2

    def test_fleet_missing_file_exits_2(self, capsys):
        assert main(["fleet", "--once",
                     "/nonexistent/events.jsonl"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_fleet_empty_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text("")
        assert main(["fleet", "--once", str(path)]) == 2
        assert "no events" in capsys.readouterr().err


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
