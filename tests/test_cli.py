"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestAlignCommand:
    def test_align_basic(self, capsys):
        assert main(["align", "ACGTACGT", "ACGTTCGT"]) == 0
        out = capsys.readouterr().out
        assert "score : -1" in out
        assert "cigar :" in out

    def test_align_with_timing(self, capsys):
        assert main(["align", "ACGT" * 10, "ACGT" * 10, "--timing"]) == 0
        out = capsys.readouterr().out
        assert "smx" in out and "simd" in out

    def test_align_protein_config(self, capsys):
        assert main(["align", "--config", "protein", "HEAGAWGHEE",
                     "PAWHEAE"]) == 0
        assert "score" in capsys.readouterr().out

    def test_align_ascii_config(self, capsys):
        assert main(["align", "--config", "ascii", "kitten",
                     "sitting"]) == 0
        out = capsys.readouterr().out
        assert "score : -3" in out  # classic Levenshtein example

    def test_invalid_config_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["align", "--config", "nope", "A",
                                       "C"])


class TestSimulateCommand:
    def test_simulate_defaults(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4"]) == 0
        out = capsys.readouterr().out
        assert "engine utilization" in out
        assert "L2 port occupancy" in out

    def test_simulate_alignment_mode(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--alignment-mode"]) == 0
        assert "alignment" in capsys.readouterr().out

    def test_simulate_worker_override(self, capsys):
        assert main(["simulate", "--size", "320", "--blocks", "4",
                     "--workers", "1"]) == 0


class TestAreaCommand:
    def test_area_table(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "SMX-1D unit" in out
        assert "0.0152" in out
        assert "mW" in out

    def test_area_worker_override(self, capsys):
        assert main(["area", "--workers", "2"]) == 0
        assert "2 x" in capsys.readouterr().out


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
