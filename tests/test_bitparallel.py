"""Property and contract tests for the batched bit-parallel kernel.

The kernel packs 64 DP rows per uint64 word *and* vectorizes across
pairs, so the hazards are lane-mixing ones: a pair reading another
pair's block, a block-boundary carry lost at 64/128 rows, padding rows
leaking match bits, or the per-pair score mask slipping a column. The
Hypothesis suites here attack exactly those seams; conformance against
the brute-force oracle lives in ``tests/test_conformance.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import align, score
from repro.baselines.myers import myers_edit_distance
from repro.config import dna_edit_config, dna_gap_config
from repro.encoding.alphabet import DNA
from repro.errors import AlignmentError, ConfigurationError
from repro.exec import (
    BatchConfig,
    BatchEngine,
    BitparallelSweep,
    bucketize,
    plan_routes,
    sweep_bitparallel,
)
from repro.exec.bitparallel import pattern_masks
from repro.exec.planner import (
    ROUTE_BITPARALLEL,
    ROUTE_FULL,
    ROUTE_WAVEFRONT,
    PlannerPolicy,
)
from repro.obs import Observability

CONFIG = dna_edit_config()


def _random_pairs(seed: int, count: int, max_len: int):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        n = int(rng.integers(0, max_len + 1))
        m = int(rng.integers(0, max_len + 1))
        pairs.append((DNA.random(n, rng), DNA.random(m, rng)))
    return pairs


def _engine(**kwargs):
    batch = BatchConfig(engine="bitparallel", traceback=False, **kwargs)
    return BatchEngine(CONFIG, batch)


# ---------------------------------------------------------------------
# Kernel properties
# ---------------------------------------------------------------------

class TestKernelProperties:
    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 24),
           max_len=st.integers(0, 160))
    def test_batch_equals_per_pair(self, seed, count, max_len):
        """A batch of B pairs scores identically to B one-pair calls
        (no lane can read a neighbour's blocks)."""
        pairs = _random_pairs(seed, count, max_len)
        batched = _engine().run(pairs)
        for pair, result in zip(pairs, batched):
            alone = _engine().run([pair])[0]
            assert alone.score == result.score

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000), count=st.integers(2, 24))
    def test_order_invariance(self, seed, count):
        """Reversing submission order reverses the results exactly
        (bucketing must restore submission order)."""
        pairs = _random_pairs(seed, count, 150)
        forward = _engine().run(pairs)
        backward = _engine().run(pairs[::-1])
        assert [r.score for r in forward] \
            == [r.score for r in backward][::-1]

    @settings(deadline=None, max_examples=25)
    @given(seed=st.integers(0, 10_000),
           n=st.sampled_from([63, 64, 65, 127, 128, 129]),
           m=st.integers(0, 200))
    def test_block_boundary_lengths(self, seed, n, m):
        """Pattern lengths straddling the 64-row block boundary: the
        inter-block hin/hout carry chain and the boundary-bit score
        read must agree with the scalar reference."""
        rng = np.random.default_rng(seed)
        q, r = DNA.random(n, rng), DNA.random(m, rng)
        result = _engine().run([(q, r)])[0]
        assert result.score == -myers_edit_distance(q, r)

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000), count=st.integers(1, 16))
    def test_matches_scalar_myers_elementwise(self, seed, count):
        pairs = _random_pairs(seed, count, 200)
        for (q, r), result in zip(pairs, _engine().run(pairs)):
            assert result.score == -myers_edit_distance(q, r)

    def test_mixed_lengths_share_buckets_safely(self):
        """Pairs of different true lengths inside one padded bucket:
        padding rows must not contribute match bits, and each lane
        must stop its score at its own r_len column."""
        rng = np.random.default_rng(3)
        pairs = [(DNA.random(n, rng), DNA.random(m, rng))
                 for n in (1, 5, 9, 14) for m in (1, 6, 11, 15)]
        for (q, r), result in zip(pairs, _engine().run(pairs)):
            assert result.score == -myers_edit_distance(q, r)

    def test_sweep_work_metadata(self):
        rng = np.random.default_rng(5)
        pairs = [(DNA.random(130, rng), DNA.random(100, rng)),
                 (DNA.random(64, rng), DNA.random(100, rng))]
        [batch] = bucketize(pairs, 256)
        sweep = sweep_bitparallel(batch)
        assert isinstance(sweep, BitparallelSweep)
        by_pos = {int(batch.index[b]): b for b in range(batch.size)}
        assert sweep.blocks[by_pos[0]] == 3  # ceil(130 / 64)
        assert sweep.blocks[by_pos[1]] == 1
        assert sweep.cells[by_pos[0]] == 130 * 100
        assert sweep.words[by_pos[0]] == 3 * 100

    def test_pattern_masks_ignore_padding(self):
        rng = np.random.default_rng(9)
        pairs = [(DNA.random(10, rng), DNA.random(10, rng))]
        [batch] = bucketize(pairs, 64)
        peq = pattern_masks(batch, 4)
        union = np.bitwise_or.reduce(peq[0, :, 0])
        assert union == np.uint64((1 << 10) - 1)  # rows 10.. stay clear


# ---------------------------------------------------------------------
# Alphabet contract
# ---------------------------------------------------------------------

class TestAlphabetContract:
    def test_mixed_alphabet_rejected(self):
        """Codes beyond the declared alphabet raise the same
        AlignmentError contract as the scalar baseline, tagged with
        the submission index for quarantine."""
        good = np.array([0, 1, 2, 3], dtype=np.uint8)
        bad = np.array([0, 9, 1], dtype=np.uint8)
        with pytest.raises(AlignmentError, match="alphabet size") as info:
            _engine().run([(good, good), (bad, good)])
        assert info.value.pair_index == 1

    def test_reference_codes_checked_too(self):
        good = np.array([0, 1, 2, 3], dtype=np.uint8)
        bad = np.array([250], dtype=np.uint8)
        with pytest.raises(AlignmentError, match="alphabet size"):
            _engine().run([(good, bad)])

    def test_ascii_alphabet_accepts_any_byte(self):
        from repro.config import ascii_config
        config = ascii_config()
        engine = BatchEngine(config, BatchConfig(engine="bitparallel",
                                                 traceback=False))
        a = config.encode("kitten")
        b = config.encode("sitting")
        assert engine.run([(a, b)])[0].score == -3


# ---------------------------------------------------------------------
# Configuration and API surface
# ---------------------------------------------------------------------

class TestConfigurationContract:
    def test_traceback_requested_raises(self):
        with pytest.raises(ConfigurationError, match="score-only"):
            BatchConfig(engine="bitparallel", traceback=True)

    def test_non_global_mode_raises(self):
        with pytest.raises(ConfigurationError, match="global"):
            BatchConfig(engine="bitparallel", mode="local",
                        traceback=False)

    def test_non_edit_model_raises(self):
        engine = BatchEngine(dna_gap_config(),
                             BatchConfig(engine="bitparallel",
                                         traceback=False))
        pair = (np.zeros(4, dtype=np.uint8), np.zeros(4, dtype=np.uint8))
        with pytest.raises(ConfigurationError, match="edit model"):
            engine.run([pair])

    def test_api_score_method(self):
        assert score("GATTACA", "GATCA", method="bitparallel") == -2
        assert score("", "", method="bitparallel") == 0
        assert score("", "ACGT", method="bitparallel") == -4

    def test_api_align_method_rejected(self):
        with pytest.raises(ConfigurationError, match="score-only"):
            align("ACGT", "ACGA", method="bitparallel")

    def test_api_score_non_edit_preset_rejected(self):
        with pytest.raises(ConfigurationError):
            score("ACGT", "ACGA", preset="dna-gap", method="bitparallel")

    def test_service_job_validation(self):
        from repro.service.protocol import job_from_dict, job_to_dict
        from repro.service import JobSpec
        spec = JobSpec(job_id="job-1", pairs=[("ACGT", "ACGA")],
                       engine="bitparallel", traceback=False)
        assert job_from_dict(job_to_dict(spec)).engine == "bitparallel"
        with pytest.raises(ValueError, match="score-only"):
            job_from_dict(job_to_dict(
                JobSpec(job_id="job-2", pairs=[("ACGT", "ACGA")],
                        engine="bitparallel", traceback=True)))


# ---------------------------------------------------------------------
# Planner routing
# ---------------------------------------------------------------------

class TestPlannerRouting:
    def _divergent_pair(self, rng, length=256):
        return DNA.random(length, rng), DNA.random(length, rng)

    def test_score_only_divergent_edit_pairs_route_bitparallel(self):
        rng = np.random.default_rng(11)
        pairs = [self._divergent_pair(rng) for _ in range(4)]
        routes, _ = plan_routes(pairs, CONFIG.model, PlannerPolicy(),
                                traceback=False)
        assert routes == [ROUTE_BITPARALLEL] * 4

    def test_cigar_pairs_stay_off_bitparallel(self):
        rng = np.random.default_rng(11)
        pairs = [self._divergent_pair(rng) for _ in range(4)]
        routes, _ = plan_routes(pairs, CONFIG.model, PlannerPolicy(),
                                traceback=True)
        assert ROUTE_BITPARALLEL not in routes
        assert routes == [ROUTE_FULL] * 4

    def test_near_identical_pairs_stay_on_wavefront(self):
        rng = np.random.default_rng(13)
        r = DNA.random(300, rng)
        routes, _ = plan_routes([(r.copy(), r)], CONFIG.model,
                                PlannerPolicy(), traceback=False)
        assert routes == [ROUTE_WAVEFRONT]

    def test_short_and_empty_pairs_stay_on_full(self):
        rng = np.random.default_rng(17)
        pairs = [(DNA.random(4, rng), DNA.random(4, rng)),
                 (DNA.random(0, rng), DNA.random(90, rng))]
        routes, _ = plan_routes(pairs, CONFIG.model, PlannerPolicy(),
                                traceback=False)
        assert routes == [ROUTE_FULL, ROUTE_FULL]

    def test_non_edit_model_never_routes_bitparallel(self):
        rng = np.random.default_rng(19)
        pairs = [self._divergent_pair(rng) for _ in range(3)]
        routes, _ = plan_routes(pairs, dna_gap_config().model,
                                PlannerPolicy(), traceback=False)
        assert ROUTE_BITPARALLEL not in routes

    def test_auto_engine_matches_scalar_on_divergent_batch(self):
        rng = np.random.default_rng(23)
        pairs = [self._divergent_pair(rng, 128) for _ in range(12)]
        ctx = Observability.enabled_context()
        auto = BatchEngine(CONFIG, BatchConfig(engine="auto",
                                               traceback=False),
                           obs=ctx).run(pairs)
        scalar = BatchEngine(CONFIG, BatchConfig(engine="scalar",
                                                 traceback=False)
                             ).run(pairs)
        assert [a.score for a in auto] == [s.score for s in scalar]
        snapshot = ctx.metrics.snapshot()
        assert snapshot.get("exec.plan.bitparallel", 0) == len(pairs)


# ---------------------------------------------------------------------
# Telemetry reconciliation
# ---------------------------------------------------------------------

class TestTelemetry:
    def test_profile_cells_match_counters(self):
        pairs = _random_pairs(29, 24, 200)
        ctx = Observability.enabled_context(profile=True)
        batch = BatchConfig(engine="bitparallel", traceback=False)
        BatchEngine(CONFIG, batch, obs=ctx).run(pairs)
        cells = ctx.profiler.total("cells")
        assert cells == sum(len(q) * len(r) for q, r in pairs)
        counters = ctx.metrics.snapshot()
        assert cells == sum(value for key, value in counters.items()
                            if key.startswith("exec.cells"))
        assert ctx.profiler.total("bytes_moved") \
            == sum(value for key, value in counters.items()
                   if key.startswith("exec.bytes_moved"))

    def test_kernel_phase_present(self):
        pairs = _random_pairs(31, 8, 120)
        ctx = Observability.enabled_context(profile=True)
        batch = BatchConfig(engine="bitparallel", traceback=False)
        BatchEngine(CONFIG, batch, obs=ctx).run(pairs)
        folded = ctx.profiler.collapsed("cells")
        assert "linear.bitparallel" in folded
        assert folded.startswith("exec.bitparallel") or \
            "exec.bitparallel" in folded

    def test_bytes_moved_reflect_lane_words_not_cells(self):
        """The bit-parallel sweep's traffic is 3 words per 64-row
        block step -- far below the 8 bytes/cell a rolling-row kernel
        moves. The accounting must reflect the real (smaller) traffic;
        that frugality is the point of the kernel."""
        rng = np.random.default_rng(37)
        pairs = [(DNA.random(1024, rng), DNA.random(1024, rng))]
        ctx = Observability.enabled_context(profile=True)
        batch = BatchConfig(engine="bitparallel", traceback=False)
        BatchEngine(CONFIG, batch, obs=ctx).run(pairs)
        moved = ctx.profiler.total("bytes_moved")
        assert moved == 3 * 8 * 16 * 1024  # words_per_step * blocks * m
        assert moved < 8 * 1024 * 1024  # << the per-cell accounting

    def test_degradation_ladder_covers_bitparallel(self):
        from repro.resilience.ladder import VECTORIZED_ENGINES, plan_rungs
        assert "bitparallel" in VECTORIZED_ENGINES
        batch = BatchConfig(engine="bitparallel", traceback=False)
        rungs = plan_rungs(batch, "alignment")
        assert [name for name, _ in rungs] == ["scalar"]
        scalar_cfg = rungs[0][1]
        assert scalar_cfg.engine == "scalar"
        assert scalar_cfg.traceback is False
