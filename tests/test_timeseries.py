"""Time-series store: windowing, rates, exact digest windows,
retention/downsampling, idle-gap compression, persistence."""

import json

import pytest

from repro.obs.digest import LatencyDigest
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import SCHEMA, TimeSeriesStore, Window


class FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture
def clock():
    return FakeClock(100.0)


def make_store(clock, **kwargs):
    kwargs.setdefault("interval_s", 1.0)
    return TimeSeriesStore(clock=clock, **kwargs)


class TestWindowing:
    def test_first_tick_anchors_epoch_no_window(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        assert store.tick(registry) == []
        assert store.latest() is None

    def test_seal_after_boundary(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.counter("service.jobs", verdict="done").inc(5)
        clock.advance(1.0)
        sealed = store.tick(registry)
        assert len(sealed) == 1
        window = sealed[0]
        assert window.index == 0
        assert window.counters["service.jobs{verdict=done}"] == 5.0
        assert window.rate("service.jobs{verdict=done}") == \
            pytest.approx(5.0)

    def test_counters_become_deltas_not_totals(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        registry.counter("c").inc(100)  # pre-epoch baseline
        store.tick(registry)
        registry.counter("c").inc(3)
        clock.advance(1.0)
        [window] = store.tick(registry)
        assert window.counters["c"] == 3.0
        registry.counter("c").inc(7)
        clock.advance(1.0)
        [window] = store.tick(registry)
        assert window.counters["c"] == 7.0

    def test_zero_delta_counters_omitted(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        registry.counter("quiet").inc()
        store.tick(registry)
        clock.advance(1.0)
        [window] = store.tick(registry)
        assert "quiet" not in window.counters

    def test_gauges_copied(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.gauge("depth", tenant="a").set(4)
        clock.advance(1.0)
        [window] = store.tick(registry)
        assert window.gauges["depth{tenant=a}"] == 4.0

    def test_sub_interval_ticks_seal_nothing(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        for _ in range(9):
            clock.advance(0.1)
            assert store.tick(registry) == []
        clock.advance(0.2)
        assert len(store.tick(registry)) == 1

    def test_idle_gap_compression(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.counter("c").inc()
        clock.advance(10.0)  # 9 empty intervals skipped, not stored
        sealed = store.tick(registry)
        assert len(sealed) == 1
        assert len(store.all_windows()) == 1
        registry.counter("c").inc()
        clock.advance(1.0)
        [window] = store.tick(registry)
        assert window.index == 10
        assert window.counters["c"] == 1.0


class TestDigestWindows:
    def test_window_digest_holds_only_window_samples(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.distribution("lat").observe(10.0)
        clock.advance(1.0)
        [first] = store.tick(registry)
        registry.distribution("lat").observe(1000.0)
        clock.advance(1.0)
        [second] = store.tick(registry)
        assert first.digest("lat").count == 1
        assert second.digest("lat").count == 1
        assert first.quantile("lat", 0.99) == pytest.approx(10.0)
        assert second.quantile("lat", 0.99) == pytest.approx(1000.0)

    def test_window_digest_bit_identical_to_offline_union(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        samples = [3.0, 7.5, 42.0, 0.4, 3.0]
        for value in samples:
            registry.distribution("lat", tenant="a").observe(value)
        clock.advance(1.0)
        [window] = store.tick(registry)
        offline = LatencyDigest()
        for value in samples:
            offline.observe(value)
        assert window.digests["lat{tenant=a}"] == offline.export_state()

    def test_percentiles_series(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        for tick in range(3):
            registry.distribution("lat").observe(float(tick + 1))
            clock.advance(1.0)
            store.tick(registry)
        series = store.series("lat", "p99")
        assert [index for index, _ in series] == [0, 1, 2]
        assert [round(v) for _, v in series] == [1, 2, 3]

    def test_series_unknown_field_raises(self, clock):
        store = make_store(clock)
        with pytest.raises(ValueError, match="field"):
            store.series("lat", "p42")


class TestRetention:
    def test_fine_ring_bounded(self, clock):
        store = make_store(clock, retention=4, coarse_factor=0)
        registry = MetricsRegistry()
        store.tick(registry)
        for _ in range(10):
            registry.counter("c").inc()
            clock.advance(1.0)
            store.tick(registry)
        windows = store.all_windows()
        assert len(windows) == 4
        assert [w.index for w in windows] == [6, 7, 8, 9]
        assert store.sealed_total == 10

    def test_downsampling_merges_coarse_windows(self, clock):
        store = make_store(clock, retention=2, coarse_factor=2,
                           coarse_retention=8)
        registry = MetricsRegistry()
        store.tick(registry)
        for _ in range(6):
            registry.counter("c").inc()
            registry.distribution("lat").observe(5.0)
            clock.advance(1.0)
            store.tick(registry)
        windows = store.all_windows()
        # 2 coarse (2 fine each) + 2 fine survivors.
        assert [w.merged for w in windows] == [2, 2, 1, 1]
        coarse = windows[0]
        assert coarse.counters["c"] == 2.0
        assert coarse.digest("lat").count == 2
        assert coarse.duration_s == pytest.approx(2.0)
        # Rates stay per-second across the merge.
        assert coarse.rate("c") == pytest.approx(1.0)

    def test_coarse_merge_digest_exact(self, clock):
        store = make_store(clock, retention=1, coarse_factor=2,
                           coarse_retention=8)
        registry = MetricsRegistry()
        store.tick(registry)
        offline = LatencyDigest()
        for value in (1.0, 10.0, 100.0, 1000.0):
            registry.distribution("lat").observe(value)
            offline_piece = LatencyDigest()
            offline_piece.observe(value)
            offline.merge_state(offline_piece.export_state())
            clock.advance(1.0)
            store.tick(registry)
        coarse = store.all_windows()[0]
        assert coarse.merged == 2
        two = LatencyDigest()
        two.observe(1.0)
        two.observe(10.0)
        assert coarse.digests["lat"] == two.export_state()

    def test_out_of_order_merge_rejected(self):
        early = Window(index=0, start=0.0, end=1.0)
        late = Window(index=1, start=1.0, end=2.0)
        with pytest.raises(ValueError, match="order"):
            late.merge(early)


class TestValidationAndPersistence:
    def test_bad_args_rejected(self, clock):
        with pytest.raises(ValueError):
            TimeSeriesStore(interval_s=0.0)
        with pytest.raises(ValueError):
            TimeSeriesStore(retention=0)
        with pytest.raises(ValueError):
            TimeSeriesStore(coarse_factor=-1)

    def test_round_trip(self, clock, tmp_path):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.counter("c", tenant="a").inc(3)
        registry.distribution("lat", tenant="a").observe(7.0)
        clock.advance(1.0)
        store.tick(registry)
        path = str(tmp_path / "telemetry.json")
        store.save(path)
        loaded = TimeSeriesStore.load(path, clock=clock)
        assert loaded.interval_s == store.interval_s
        assert len(loaded.all_windows()) == 1
        [window] = loaded.all_windows()
        assert window.counters == {"c{tenant=a}": 3.0}
        assert window.digests["lat{tenant=a}"] == \
            store.all_windows()[0].digests["lat{tenant=a}"]

    def test_document_schema_checked(self, clock, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/1"}))
        with pytest.raises(ValueError, match="schema"):
            TimeSeriesStore.load(str(path))
        path.write_text("{not json")
        with pytest.raises(ValueError):
            TimeSeriesStore.load(str(path))

    def test_document_lists_schema(self, clock):
        store = make_store(clock)
        assert store.to_document()["schema"] == SCHEMA

    def test_tenants_scan(self, clock):
        store = make_store(clock)
        registry = MetricsRegistry()
        store.tick(registry)
        registry.counter("c", tenant="acme").inc()
        registry.counter("c", tenant="zeno").inc()
        registry.counter("c").inc()
        clock.advance(1.0)
        store.tick(registry)
        assert store.tenants() == ["acme", "zeno"]
