"""Tests for Alignment/CIGAR objects and traceback utilities."""

import numpy as np
import pytest

from repro.dp.alignment import Alignment, compress_ops
from repro.dp.dense import nw_matrix
from repro.dp.traceback import (
    alignment_from_matrix,
    merge_cigars,
    traceback_full,
)
from repro.errors import AlignmentError
from repro.scoring.model import edit_model
from tests.conftest import make_pair


class TestCigarBasics:
    def test_cigar_string(self):
        aln = Alignment(score=0, cigar=[(3, "="), (1, "X"), (2, "I")],
                        query_len=6, ref_len=4)
        assert aln.cigar_string == "3=1X2I"

    def test_counts(self):
        aln = Alignment(score=0, cigar=[(3, "="), (1, "X"), (2, "I"),
                                        (1, "D")], query_len=6, ref_len=5)
        assert aln.matches == 3
        assert aln.edit_operations == 4
        assert aln.columns == 7
        assert aln.consumed() == (6, 5)

    def test_compress_ops(self):
        assert compress_ops(list("==XX=")) == [(2, "="), (2, "X"), (1, "=")]

    def test_compress_empty(self):
        assert compress_ops([]) == []

    def test_merge_cigars_fuses_runs(self):
        merged = merge_cigars([[(2, "=")], [(3, "="), (1, "I")], [(2, "I")]])
        assert merged == [(5, "="), (3, "I")]

    def test_merge_empty_parts(self):
        assert merge_cigars([[], [(1, "=")], []]) == [(1, "=")]


class TestRescoreValidate:
    def test_rescore_simple_match(self):
        model = edit_model()
        q = np.array([0, 1, 2], dtype=np.uint8)
        aln = Alignment(score=0, cigar=[(3, "=")], query_len=3, ref_len=3)
        assert aln.rescore(q, q, model) == 0

    def test_rescore_detects_wrong_op(self):
        model = edit_model()
        q = np.array([0, 1], dtype=np.uint8)
        r = np.array([0, 2], dtype=np.uint8)
        aln = Alignment(score=0, cigar=[(2, "=")], query_len=2, ref_len=2)
        with pytest.raises(AlignmentError, match="disagrees"):
            aln.rescore(q, r, model)

    def test_rescore_detects_partial_consumption(self):
        model = edit_model()
        q = np.array([0, 1, 2], dtype=np.uint8)
        aln = Alignment(score=0, cigar=[(2, "=")], query_len=3, ref_len=3)
        with pytest.raises(AlignmentError, match="consumed"):
            aln.rescore(q, q, model)

    def test_rescore_unknown_op(self):
        model = edit_model()
        q = np.array([0], dtype=np.uint8)
        aln = Alignment(score=0, cigar=[(1, "Z")], query_len=1, ref_len=1)
        with pytest.raises(AlignmentError, match="unknown CIGAR"):
            aln.rescore(q, q, model)

    def test_validate_score_mismatch(self):
        model = edit_model()
        q = np.array([0, 1], dtype=np.uint8)
        aln = Alignment(score=-5, cigar=[(2, "=")], query_len=2, ref_len=2)
        with pytest.raises(AlignmentError, match="stored score"):
            aln.validate(q, q, model)

    def test_gap_scoring(self):
        model = edit_model()
        q = np.array([0, 1], dtype=np.uint8)
        r = np.array([0], dtype=np.uint8)
        aln = Alignment(score=-1, cigar=[(1, "="), (1, "I")], query_len=2,
                        ref_len=1)
        aln.validate(q, r, model)


class TestPretty:
    def test_pretty_output_shape(self):
        aln = Alignment(score=-2, cigar=[(2, "="), (1, "X"), (1, "I"),
                                         (1, "D")], query_len=4, ref_len=4)
        text = aln.pretty("AACG", "AATG")
        lines = text.splitlines()
        assert lines[0].startswith("Q ")
        assert lines[2].startswith("R ")
        assert "|" in lines[1]

    def test_pretty_gap_markers(self):
        aln = Alignment(score=-1, cigar=[(1, "="), (1, "I")], query_len=2,
                        ref_len=1)
        text = aln.pretty("AC", "A")
        assert "-" in text


class TestTracebackFull:
    def test_path_endpoints(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 20, 0.2, rng)
        matrix = nw_matrix(q, r, config.model)
        _, path = traceback_full(matrix, q, r, config.model)
        assert path[0] == (0, 0)
        assert path[-1] == (len(q), len(r))

    def test_alignment_validates(self, config, rng):
        q, r = make_pair(config, 30, 0.25, rng)
        matrix = nw_matrix(q, r, config.model)
        aln = alignment_from_matrix(matrix, q, r, config.model)
        aln.validate(q, r, config.model)

    def test_shape_mismatch_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 5, 0.2, rng)
        bad = np.zeros((3, 3), dtype=np.int64)
        with pytest.raises(AlignmentError, match="does not match"):
            traceback_full(bad, q, r, config.model)

    def test_inconsistent_matrix_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q, r = make_pair(config, 4, 0.2, rng)
        matrix = nw_matrix(q, r, config.model).copy()
        matrix[2, 2] = 100  # unreachable value
        with pytest.raises(AlignmentError, match="no valid predecessor"):
            traceback_full(matrix, q, r, config.model)

    def test_tie_break_priority_diag_first(self):
        """With all-zero scores every move ties; diag must win."""
        model = edit_model()
        q = np.array([0, 0], dtype=np.uint8)
        matrix = nw_matrix(q, q, model)
        cigar, _ = traceback_full(matrix, q, q, model)
        assert cigar == [(2, "=")]
