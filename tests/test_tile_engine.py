"""Tests for DP-tile computation and SMX-engine/worker geometry."""

import numpy as np
import pytest

from repro.core.engine import DEFAULT_PIPELINE_LATENCY, EngineParams
from repro.core.tile import compute_tile, compute_tile_bit
from repro.core.worker import (
    BlockJob,
    antidiagonal_order,
    memory_footprint_bytes,
    supertile_span,
    supertiles_of,
    tiles_for,
)
from repro.errors import ConfigurationError, RangeError


class TestTileFunctional:
    @pytest.mark.parametrize("name", ["dna-edit", "dna-gap", "protein",
                                      "ascii"])
    def test_bit_model_matches_fast_path(self, configs, name, rng):
        config = configs[name]
        vl = config.vl
        theta = config.model.theta
        for _ in range(5):
            q = config.alphabet.random(vl, rng)
            r = config.alphabet.random(vl, rng)
            dvp = rng.integers(0, theta + 1, vl)
            dhp = rng.integers(0, theta + 1, vl)
            fast = compute_tile(q, r, config.model, dvp, dhp)
            bit = compute_tile_bit(q, r, config.model.shifted_table(),
                                   config.ew, dvp, dhp)
            assert np.array_equal(fast.dvp_right, bit.dvp_right)
            assert np.array_equal(fast.dhp_bottom, bit.dhp_bottom)

    def test_partial_tile(self, configs, rng):
        config = configs["dna-edit"]
        q = config.alphabet.random(5, rng)
        r = config.alphabet.random(7, rng)
        result = compute_tile_bit(q, r, config.model.shifted_table(),
                                  config.ew, np.zeros(5), np.zeros(7))
        assert result.n == 5 and result.m == 7

    def test_oversized_tile_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q = config.alphabet.random(40, rng)
        r = config.alphabet.random(40, rng)
        with pytest.raises(RangeError, match="exceeds VL"):
            compute_tile_bit(q, r, config.model.shifted_table(), 2,
                             np.zeros(40), np.zeros(40))

    def test_border_range_rejected(self, configs, rng):
        config = configs["dna-edit"]
        q = config.alphabet.random(4, rng)
        r = config.alphabet.random(4, rng)
        with pytest.raises(RangeError, match="exceed"):
            compute_tile_bit(q, r, config.model.shifted_table(), 2,
                             np.full(4, 9), np.zeros(4))

    def test_keep_block_exposes_fields(self, configs, rng):
        config = configs["dna-edit"]
        q = config.alphabet.random(8, rng)
        r = config.alphabet.random(8, rng)
        result = compute_tile(q, r, config.model, np.zeros(8), np.zeros(8),
                              keep_block=True)
        assert result.block is not None
        assert result.block.dvp.shape == (8, 9)


class TestEngineParams:
    def test_paper_pipeline_latencies(self):
        """Paper Sec. 7: 7/5/4/3 cycles for EW = 2/4/6/8 at 1 GHz."""
        engine = EngineParams()
        assert engine.latency(2) == 7
        assert engine.latency(4) == 5
        assert engine.latency(6) == 4
        assert engine.latency(8) == 3

    def test_peak_throughput_table3(self):
        """Paper Table 3: SMX peaks of 1024/256/100/64 GCUPS."""
        engine = EngineParams()
        assert engine.peak_gcups(2) == 1024.0
        assert engine.peak_gcups(4) == 256.0
        assert engine.peak_gcups(6) == 100.0
        assert engine.peak_gcups(8) == 64.0

    def test_tile_dims(self):
        engine = EngineParams()
        assert [engine.tile_dim(ew) for ew in (2, 4, 6, 8)] == [32, 16, 10,
                                                                8]

    def test_missing_latency_rejected(self):
        with pytest.raises(ConfigurationError, match="missing"):
            EngineParams(pipeline_latency={2: 7})

    def test_zero_latency_rejected(self):
        bad = dict(DEFAULT_PIPELINE_LATENCY)
        bad[4] = 0
        with pytest.raises(ConfigurationError):
            EngineParams(pipeline_latency=bad)


class TestWorkerGeometry:
    @pytest.mark.parametrize("ew", [2, 4, 6, 8])
    def test_supertile_span_is_eight(self, ew):
        """64-byte lines give 8x8-tile supertiles at every EW (Fig. 7)."""
        assert supertile_span(ew) == 8

    def test_tiles_for_rounds_up(self):
        assert tiles_for(100, 2) == 4   # ceil(100 / 32)
        assert tiles_for(64, 2) == 2
        assert tiles_for(1, 8) == 1

    def test_block_job_tile_grid(self):
        job = BlockJob(n=100, m=100, ew=2)
        assert job.tile_rows == 4 and job.tile_cols == 4
        assert job.total_tiles == 16
        assert job.cells == 10_000

    def test_empty_block_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockJob(n=0, m=10, ew=2)

    def test_supertile_decomposition_covers_block(self):
        job = BlockJob(n=1000, m=900, ew=2)  # 32x29 tiles
        tasks = supertiles_of(job)
        assert sum(t.tiles for t in tasks) == job.total_tiles

    def test_supertile_store_lines_alignment_mode(self):
        job = BlockJob(n=1024, m=1024, ew=2, store_tile_borders=True)
        task = supertiles_of(job)[0]
        assert task.tiles == 64
        assert task.store_lines == 2 + 16  # edges + 64 tiles x 16 B

    def test_supertile_store_lines_score_mode(self):
        job = BlockJob(n=1024, m=1024, ew=2)
        assert supertiles_of(job)[0].store_lines == 2

    def test_antidiagonal_order_dependencies(self):
        """Every tile appears after its west and north neighbours."""
        order = antidiagonal_order(5, 7)
        position = {coords: idx for idx, coords in enumerate(order)}
        assert len(order) == 35
        for (row, col), idx in position.items():
            if row > 0:
                assert position[(row - 1, col)] < idx
            if col > 0:
                assert position[(row, col - 1)] < idx

    def test_antidiagonal_order_single_row(self):
        assert antidiagonal_order(1, 4) == [(0, 0), (0, 1), (0, 2), (0, 3)]


class TestMemoryFootprint:
    def test_score_only_linear(self):
        job = BlockJob(n=10_000, m=10_000, ew=2)
        assert memory_footprint_bytes(job) == (20_000 * 2 + 7) // 8

    def test_tile_borders_vs_full_matrix(self):
        """Paper Sec. 5: border-only storage cuts memory vs SMX-1D's
        full delta field by VL/2 = 32x at EW=2 (2 x VL x EW bits per
        tile instead of 2 x VL^2 x EW)."""
        job = BlockJob(n=10_240, m=10_240, ew=2, store_tile_borders=True)
        border_bytes = memory_footprint_bytes(job)
        full_delta_bytes = job.cells * 2 * 2 // 8
        assert full_delta_bytes / border_bytes == 32.0

    def test_vs_software_32bit(self):
        """...and vs 32-bit software storage by 256x at EW=2."""
        job = BlockJob(n=10_240, m=10_240, ew=2, store_tile_borders=True)
        software = job.cells * 4
        assert software / memory_footprint_bytes(job) == 256.0
