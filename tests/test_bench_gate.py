"""Tests for the benchmark-history regression gate (repro.obs.bench
and the ``repro bench`` CLI)."""

import json

import pytest

from repro.__main__ import main
from repro.obs import bench


def _record(metrics, quick=True):
    return {"created": "2026-01-01T00:00:00+00:00", "git_sha": None,
            "quick": quick, "params": {}, "metrics": dict(metrics)}


BASE = {"kernel.linear.dna.cups": 1e8,
        "kernel.affine.dna.cups": 4e7,
        "kernel.linear.narrow.speedup": 2.0}


def _history(values=(1.0, 1.05, 0.95, 1.02)):
    return {"schema": bench.HISTORY_SCHEMA,
            "records": [_record({k: v * scale for k, v in BASE.items()})
                        for scale in values]}


class TestCheck:
    def test_fresh_metric_is_new(self):
        rows = bench.check(_record(BASE), {"records": []})
        assert {row["status"] for row in rows} == {"new"}

    def test_baseline_value_passes(self):
        rows = bench.check(_record(BASE), _history())
        assert {row["status"] for row in rows} == {"ok"}

    def test_twenty_percent_slowdown_fails_default_tolerance(self):
        slow = _record({k: 0.74 * v for k, v in BASE.items()})
        rows = bench.check(slow, _history())
        assert {row["status"] for row in rows} == {"regression"}

    def test_slowdown_within_tolerance_passes(self):
        slow = _record({k: 0.80 * v for k, v in BASE.items()})
        rows = bench.check(slow, _history())
        assert {row["status"] for row in rows} == {"ok"}
        rows = bench.check(slow, _history(), tolerance=0.1)
        assert {row["status"] for row in rows} == {"regression"}

    def test_baseline_is_trailing_median(self):
        history = _history(values=(1.0, 1.0, 10.0, 1.0, 1.0, 1.0))
        rows = bench.check(_record(BASE), history, window=5)
        row = next(r for r in rows
                   if r["metric"] == "kernel.linear.dna.cups")
        # Median of the last five scales (1, 10, 1, 1, 1) is 1.0.
        assert row["baseline"] == pytest.approx(1e8)
        assert row["status"] == "ok"

    def test_relative_only_gates_speedups(self):
        slow = _record({"kernel.linear.dna.cups": 1.0,  # way down
                        "kernel.linear.narrow.speedup": 2.0})
        rows = bench.check(slow, _history(), relative_only=True)
        assert [row["metric"] for row in rows] == \
            ["kernel.linear.narrow.speedup"]
        assert rows[0]["status"] == "ok"

    def test_format_check_renders_table(self):
        text = bench.format_check(bench.check(_record(BASE), _history()))
        assert "kernel.linear.dna.cups" in text
        assert "ok" in text
        assert bench.format_check([]) == "(no metrics to check)"

    def test_rows_carry_the_gate_threshold(self):
        rows = bench.check(_record(BASE), _history(), tolerance=0.25)
        for row in rows:
            assert row["threshold"] == \
                pytest.approx(0.75 * row["baseline"])
        fresh = bench.check(_record(BASE), {"records": []})
        assert all(row["threshold"] is None for row in fresh)

    def test_format_regressions_names_each_culprit(self):
        slow = _record({k: 0.5 * v for k, v in BASE.items()})
        text = bench.format_regressions(bench.check(slow, _history()))
        lines = text.splitlines()
        assert len(lines) == len(BASE)
        for line in lines:
            assert line.startswith("regressed: ")
            assert "baseline median" in line
            assert "threshold" in line
            assert "% below baseline" in line
        # The arithmetic in the message matches the gate's.
        cups = next(l for l in lines if "kernel.linear.dna.cups" in l)
        assert "5e+07" in cups           # value: 0.5 * 1e8
        assert "50.5% below baseline" in cups  # vs median scale 1.01

    def test_format_regressions_empty_without_regressions(self):
        assert bench.format_regressions(
            bench.check(_record(BASE), _history())) == ""


class TestHistoryFile:
    def test_load_initialises_missing_file(self, tmp_path):
        history = bench.load_history(str(tmp_path / "none.json"))
        assert history == {"schema": bench.HISTORY_SCHEMA, "records": []}

    def test_append_round_trip(self, tmp_path):
        path = str(tmp_path / "hist.json")
        bench.append_record(path, _record(BASE))
        bench.append_record(path, _record(BASE))
        history = bench.load_history(path)
        assert len(history["records"]) == 2
        assert history["schema"] == bench.HISTORY_SCHEMA

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "something-else/1"}')
        with pytest.raises(ValueError, match="not a benchmark history"):
            bench.load_history(str(path))

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            bench.load_history(str(path))


class TestIngest:
    def test_record_from_run_reports(self, tmp_path):
        report = {
            "schema": "smx-run-report/1",
            "timings": [
                {"name": "dna-edit-score-scalar", "config": "dna-edit",
                 "mode": "score", "engine": "scalar",
                 "pairs_per_sec": 100.0},
                {"name": "dna-edit-score-vector", "config": "dna-edit",
                 "mode": "score", "engine": "vector",
                 "pairs_per_sec": 600.0},
            ],
            "tables": {"entries": [
                {"name": "SMX DNA edit", "peak_gcups_per_pu": 1024},
                {"name": "AnySeq/GPU", "peak_gcups_per_pu": 76.9},
            ]},
        }
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        record = bench.record_from_run_reports([str(path)])
        metrics = record["metrics"]
        assert metrics["engine.dna-edit-score-vector.pairs_per_sec"] \
            == 600.0
        assert metrics["engine.dna-edit-score.speedup"] == \
            pytest.approx(6.0)
        assert metrics["table3.dna-edit.gcups"] == 1024.0
        assert "table3.anyseq/gpu.gcups" not in str(metrics)

    def test_seeded_results_ingest(self):
        """The repo's own seed reports produce a usable record."""
        record = bench.record_from_run_reports(
            ["results/bench_batch_engine.json",
             "results/table3_gcups.json"])
        metrics = record["metrics"]
        assert metrics["table3.dna-edit.gcups"] == 1024.0
        assert metrics["engine.dna-edit-score.speedup"] > 1.0


class TestBenchCli:
    def _seed(self, tmp_path, scale=1.0):
        path = str(tmp_path / "hist.json")
        history = _history()
        bench.save_history(path, history)
        return path

    def test_check_passes_on_baseline(self, tmp_path, monkeypatch,
                                      capsys):
        path = self._seed(tmp_path)
        monkeypatch.setattr(bench, "collect",
                            lambda quick=True: _record(BASE))
        assert main(["bench", "--check", "--history", path]) == 0
        captured = capsys.readouterr()
        assert "ok" in captured.out
        assert "appended" in captured.err
        # The passing record was appended to the history.
        assert len(bench.load_history(path)["records"]) == 5

    def test_check_fails_on_injected_slowdown(self, tmp_path,
                                              monkeypatch, capsys):
        path = self._seed(tmp_path)
        slow = _record({k: 0.7 * v for k, v in BASE.items()})
        monkeypatch.setattr(bench, "collect", lambda quick=True: slow)
        assert main(["bench", "--check", "--history", path]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.out
        assert "not appended" in captured.err
        # The failure names every regressed metric with the numbers
        # behind the verdict.
        for metric in BASE:
            assert f"regressed: {metric}" in captured.err
        assert "baseline median" in captured.err
        assert "threshold" in captured.err
        # Regressed records must not poison the trailing median.
        assert len(bench.load_history(path)["records"]) == 4

    def test_no_append_leaves_history_untouched(self, tmp_path,
                                                monkeypatch, capsys):
        path = self._seed(tmp_path)
        monkeypatch.setattr(bench, "collect",
                            lambda quick=True: _record(BASE))
        assert main(["bench", "--no-append", "--history", path]) == 0
        assert len(bench.load_history(path)["records"]) == 4

    def test_bad_history_exits_2(self, tmp_path, monkeypatch, capsys):
        path = tmp_path / "hist.json"
        path.write_text("{broken")
        monkeypatch.setattr(bench, "collect",
                            lambda quick=True: _record(BASE))
        assert main(["bench", "--history", str(path)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_ingest_without_metrics_exits_2(self, tmp_path, capsys):
        report = tmp_path / "empty.json"
        report.write_text('{"schema": "smx-run-report/1"}')
        assert main(["bench", "--ingest", str(report),
                     "--history", str(tmp_path / "h.json")]) == 2
        assert "no benchmark metrics" in capsys.readouterr().err

    def test_collected_quick_record_checks_against_itself(
            self, tmp_path, capsys):
        """End to end: a real (collected) record appends, then a
        second identical collection passes the gate."""
        path = str(tmp_path / "hist.json")
        record = bench.collect(quick=True, repeats=1)
        assert record["metrics"]["kernel.linear.dna.cups"] > 0
        bench.append_record(path, record)
        rows = bench.check(record, bench.load_history(path))
        assert all(row["status"] == "ok" for row in rows)
