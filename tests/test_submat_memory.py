"""Tests for the 78x64-bit smx_submat memory layout (paper Sec. 4.2)."""

import pytest

from repro.errors import EncodingError
from repro.scoring.submat import (
    SUBMAT_ENTRY_BITS,
    SUBMAT_SIZE,
    SUBMAT_TOTAL_WORDS,
    SUBMAT_WORDS_PER_COLUMN,
    SubstitutionMatrix,
    blosum50,
    blosum62,
    pam250,
)


class TestLayoutConstants:
    def test_geometry_matches_paper(self):
        """26 x 26 x 6-bit serialized into 78 x 64-bit words, 3 per column."""
        assert SUBMAT_SIZE == 26
        assert SUBMAT_ENTRY_BITS == 6
        assert SUBMAT_WORDS_PER_COLUMN == 3
        assert SUBMAT_TOTAL_WORDS == 78

    def test_column_fits_three_words(self):
        assert SUBMAT_SIZE * SUBMAT_ENTRY_BITS <= 3 * 64


class TestPackUnpack:
    @pytest.mark.parametrize("loader,gaps", [
        (blosum50, (-10, -10)),
        (blosum50, (-12, -12)),
        (blosum62, (-8, -8)),
        (pam250, (-9, -9)),
    ])
    def test_roundtrip(self, loader, gaps):
        matrix = loader()
        words = matrix.pack_words(*gaps)
        assert len(words) == SUBMAT_TOTAL_WORDS
        restored = SubstitutionMatrix.unpack_words(words, *gaps)
        assert (restored.table == matrix.table).all()

    def test_words_are_64bit(self):
        words = blosum50().pack_words(-10, -10)
        assert all(0 <= w < (1 << 64) for w in words)

    def test_entry_location(self):
        """Entry (q, r) sits at bit 6*q of column r's 192-bit stream."""
        matrix = blosum50()
        words = matrix.pack_words(-10, -10)
        ref = 3  # 'D'
        stream = words[ref * 3] | (words[ref * 3 + 1] << 64) \
            | (words[ref * 3 + 2] << 128)
        query = 13  # 'N'
        raw = (stream >> (6 * query)) & 0x3F
        assert raw - 20 == matrix.score("N", "D")

    def test_shift_overflow_rejected(self):
        # PAM250 max is 17; a -24 shift pushes entries past 63.
        with pytest.raises(EncodingError, match="6-bit range"):
            pam250().pack_words(-24, -24)

    def test_negative_shifted_rejected(self):
        with pytest.raises(EncodingError, match="6-bit range"):
            blosum50().pack_words(-2, -2)

    def test_unpack_wrong_length(self):
        with pytest.raises(EncodingError, match="must hold"):
            SubstitutionMatrix.unpack_words([0] * 10, -10, -10)


class TestMatrixValidation:
    def test_asymmetric_rejected(self):
        import numpy as np

        from repro.errors import ConfigurationError
        table = np.zeros((26, 26), dtype=np.int32)
        table[0, 1] = 5
        with pytest.raises(ConfigurationError, match="asymmetric"):
            SubstitutionMatrix(name="bad", table=table)

    def test_wrong_shape_rejected(self):
        import numpy as np

        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="26x26"):
            SubstitutionMatrix(name="bad",
                               table=np.zeros((20, 20), dtype=np.int32))
