"""Crash-safe checkpoint/resume: kill/resume determinism proof.

The acceptance bar for the service layer's crash-safety story: a run
SIGKILL'd mid-batch (simulated by :class:`~repro.resilience.chaos`'s
``kill_at_unit`` fault, which raises the unswallowable
:class:`InjectedKill` immediately *after* a checkpoint settles) and
then resumed from its on-disk ``smx-outcome/1`` checkpoint must
produce a final document **bit-identical** to an uninterrupted run of
the same plan -- results, quarantine lists, counters, and degradation
maps, at every kill point tested. Chaos decisions are keyed on
(pair content, attempt), so replaying the checkpoint's remainder
re-derives the identical fault sequence; these tests prove it at
multiple distinct kill units, under faults, and through the CLI.

Thread backend throughout (in-process injection log, deterministic);
no deadlines or shedding (timing-dependent by design).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import standard_configs
from repro.errors import ConfigurationError
from repro.exec.engine import BatchConfig
from repro.resilience import (
    ChaosPlan,
    InjectedKill,
    ResilienceConfig,
    SupervisedEngine,
    outcome_io,
)
from tests.conftest import make_pair

PAIRS = 24
UNIT = 4  # pairs per checkpoint unit -> 6 attempt-0 units


@pytest.fixture(scope="module")
def config():
    return standard_configs()["dna-edit"]


@pytest.fixture(scope="module")
def pairs(config):
    rng = np.random.default_rng(0xD1CE)
    return [make_pair(config, 16 + int(rng.integers(0, 8)), 0.12, rng)
            for _ in range(PAIRS)]


def _engine(config, plan=None, workers=2):
    return SupervisedEngine(
        config, BatchConfig(workers=workers),
        ResilienceConfig(max_unit_pairs=UNIT, backend="thread",
                         backoff_base_s=0.0,
                         validate=plan is not None),
        plan=plan)


def _document(outcome, n):
    return outcome_io.to_document(outcome, pairs=n)


class TestCheckpointWriting:
    def test_complete_run_writes_final_checkpoint(self, config, pairs,
                                                  tmp_path):
        path = str(tmp_path / "ck.json")
        outcome = _engine(config).run(pairs, checkpoint_path=path)
        checkpoint = outcome_io.load(path)
        assert checkpoint.complete
        assert checkpoint.unsettled() == []
        assert _document(checkpoint.outcome, PAIRS) == \
            _document(outcome, PAIRS)

    def test_checkpoint_carries_pairs_digest(self, config, pairs,
                                             tmp_path):
        path = str(tmp_path / "ck.json")
        _engine(config).run(pairs, checkpoint_path=path)
        checkpoint = outcome_io.load(path)
        assert checkpoint.digest == outcome_io.pairs_digest(pairs)

    def test_empty_batch_checkpoint(self, config, tmp_path):
        path = str(tmp_path / "ck.json")
        outcome = _engine(config).run([], checkpoint_path=path)
        assert outcome.results == []
        assert outcome_io.load(path).complete


class TestKillResumeDeterminism:
    """The headline invariant, at >= 2 distinct kill units."""

    RATES = {"crash": 0.15, "bitflip": 0.1}

    def _reference(self, config, pairs):
        plan = ChaosPlan(seed=0xFA11, **self.RATES)
        return _document(_engine(config, plan).run(pairs), PAIRS)

    @pytest.mark.parametrize("kill_at", [1, 3, 5])
    def test_resumed_union_bit_identical(self, config, pairs, tmp_path,
                                         kill_at):
        reference = self._reference(config, pairs)
        path = str(tmp_path / f"ck{kill_at}.json")
        killer = ChaosPlan(seed=0xFA11, kill_at_unit=kill_at,
                           **self.RATES)
        with pytest.raises(InjectedKill):
            _engine(config, killer).run(pairs, checkpoint_path=path)
        interrupted = outcome_io.load(path)
        assert not interrupted.complete
        assert interrupted.unsettled(), "kill left nothing to resume"
        assert interrupted.outcome.completed() < PAIRS

        survivor = ChaosPlan(seed=0xFA11, **self.RATES)
        resumed = _engine(config, survivor).run(
            pairs, checkpoint_path=path, resume=path)
        assert _document(resumed, PAIRS) == reference
        final = outcome_io.load(path)
        assert final.complete
        assert _document(final.outcome, PAIRS) == reference

    def test_double_kill_then_resume(self, config, pairs, tmp_path):
        """Kill, resume-and-kill-again, then finish: still identical."""
        reference = self._reference(config, pairs)
        path = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            _engine(config, ChaosPlan(seed=0xFA11, kill_at_unit=2,
                                      **self.RATES)).run(
                pairs, checkpoint_path=path)
        with pytest.raises(InjectedKill):
            _engine(config, ChaosPlan(seed=0xFA11, kill_at_unit=1,
                                      **self.RATES)).run(
                pairs, checkpoint_path=path, resume=path)
        resumed = _engine(config, ChaosPlan(seed=0xFA11,
                                            **self.RATES)).run(
            pairs, checkpoint_path=path, resume=path)
        assert _document(resumed, PAIRS) == reference

    def test_kill_without_faults(self, config, pairs, tmp_path):
        """Clean-run kill/resume matches a plain supervised run."""
        reference = _document(_engine(config).run(pairs), PAIRS)
        path = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            _engine(config, ChaosPlan(kill_at_unit=2)).run(
                pairs, checkpoint_path=path)
        resumed = _engine(config).run(pairs, checkpoint_path=path,
                                      resume=path)
        assert _document(resumed, PAIRS) == reference

    def test_kill_event_recorded(self, config, pairs, tmp_path):
        plan = ChaosPlan(seed=0xFA11, kill_at_unit=2, **self.RATES)
        with pytest.raises(InjectedKill):
            _engine(config, plan).run(
                pairs, checkpoint_path=str(tmp_path / "ck.json"))
        kills = [e for e in plan.fired if e.cls == "kill"]
        assert len(kills) == 1


class TestResumeValidation:
    def test_pair_count_mismatch_rejected(self, config, pairs,
                                          tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            _engine(config, ChaosPlan(kill_at_unit=1)).run(
                pairs, checkpoint_path=path)
        with pytest.raises(ConfigurationError, match="24 pair"):
            _engine(config).run(pairs[:10], checkpoint_path=path,
                                resume=path)

    def test_digest_mismatch_rejected(self, config, pairs, tmp_path):
        path = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            _engine(config, ChaosPlan(kill_at_unit=1)).run(
                pairs, checkpoint_path=path)
        shuffled = list(pairs[::-1])
        with pytest.raises(ConfigurationError, match="digest"):
            _engine(config).run(shuffled, checkpoint_path=path,
                                resume=path)

    def test_kill_at_unit_validated(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(kill_at_unit=0)

    def test_parse_rates_accepts_kill(self):
        from repro.resilience import parse_rates
        plan = parse_rates("crash=0.1,kill=3")
        assert plan.kill_at_unit == 3 and plan.crash == 0.1


class TestResumeCli:
    """`repro align --checkpoint/--resume` end to end."""

    @pytest.fixture()
    def batch_file(self, tmp_path):
        rng = np.random.default_rng(21)
        alphabet = np.array(list("ACGT"))
        lines = []
        for _ in range(12):
            query = "".join(rng.choice(alphabet, 14))
            reference = "".join(rng.choice(alphabet, 14))
            lines.append(f"{query} {reference}")
        path = tmp_path / "batch.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return str(path)

    def test_cli_kill_then_resume(self, batch_file, tmp_path, capsys):
        from repro.__main__ import main
        ck = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            main(["align", "--batch", batch_file, "--chaos",
                  "crash=0.2,kill=1", "--checkpoint", ck])
        capsys.readouterr()
        assert not outcome_io.load(ck).complete
        code = main(["align", "--batch", batch_file, "--chaos",
                     "crash=0.2", "--resume", ck])
        capsys.readouterr()
        final = outcome_io.load(ck)
        assert final.complete
        assert code in (0, 3)  # 3 iff chaos left quarantined pairs
        assert (code == 3) == bool(final.outcome.failures)

    def test_cli_resume_digest_mismatch_exits_2(self, batch_file,
                                                tmp_path, capsys):
        from repro.__main__ import main
        ck = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            main(["align", "--batch", batch_file, "--chaos",
                  "kill=1", "--checkpoint", ck])
        capsys.readouterr()
        other = tmp_path / "other.txt"
        other.write_text("ACGT ACGT\n", encoding="utf-8")
        code = main(["align", "--batch", str(other), "--resume", ck])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_cli_resume_requires_batch(self, capsys):
        from repro.__main__ import main
        code = main(["align", "ACGT", "ACGT", "--resume", "x.json"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--batch" in captured.err

    def test_cli_stats_on_checkpoint(self, batch_file, tmp_path,
                                     capsys):
        from repro.__main__ import main
        ck = str(tmp_path / "ck.json")
        with pytest.raises(InjectedKill):
            main(["align", "--batch", batch_file, "--chaos", "kill=1",
                  "--checkpoint", ck])
        capsys.readouterr()
        assert main(["stats", ck]) == 0
        out = capsys.readouterr().out
        assert "smx-outcome/1" in out
        assert "in progress" in out

    def test_cli_stats_malformed_exits_2(self, tmp_path, capsys):
        from repro.__main__ import main
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        code = main(["stats", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
