"""Brute-force alignment oracles for the differential conformance suite.

Every function here recomputes alignment the *slow, obvious* way:
per-cell Python loops over explicit ``max()`` recurrences, no NumPy
sweeps, no prefix-scan tricks, no shared code with ``src/repro``. The
only thing deliberately copied from the library is its documented
traceback tie-break (diagonal, then up/insertion, then left/deletion;
H then E then F for affine), because DP *scores* are unique but CIGARs
are only comparable under a fixed tie order.

``test_conformance.py`` pins every production implementation -- scalar
aligners, the batched vector kernels, the SMX functional model, and
the baselines -- to these oracles on a seeded corpus.
"""

from __future__ import annotations

NEG = -(1 << 40)  # same magnitude as the library's NEG_INF sentinel


def _sub(model, a: int, b: int) -> int:
    return model.substitution(int(a), int(b))


def _cigar_string(ops: list[str]) -> str:
    """Run-length encode a reversed op list into a CIGAR string."""
    out = []
    for op in ops:
        if out and out[-1][1] == op:
            out[-1][0] += 1
        else:
            out.append([1, op])
    return "".join(f"{count}{op}" for count, op in out)


def _linear_matrix(q, r, model, kind: str) -> list[list[int]]:
    """Per-cell DP matrix for global / semiglobal / local modes."""
    n, m = len(q), len(r)
    h = [[0] * (m + 1) for _ in range(n + 1)]
    for j in range(1, m + 1):
        h[0][j] = j * model.gap_d if kind == "global" else 0
    for i in range(1, n + 1):
        h[i][0] = 0 if kind == "local" else i * model.gap_i
        for j in range(1, m + 1):
            best = max(h[i - 1][j - 1] + _sub(model, q[i - 1], r[j - 1]),
                       h[i - 1][j] + model.gap_i,
                       h[i][j - 1] + model.gap_d)
            if kind == "local":
                best = max(best, 0)
            h[i][j] = best
    return h


def _walk(h, q, r, model, i: int, j: int, stop_local: bool,
          free_left: bool) -> tuple[list[str], int, int]:
    """Shared traceback walk; returns (reversed ops, i, j) at the
    start cell. ``stop_local`` stops at the first zero cell;
    ``free_left`` stops when the query is consumed (semiglobal)."""
    ops: list[str] = []
    while True:
        if stop_local and h[i][j] == 0:
            break
        if free_left and i == 0:
            break
        if not stop_local and not free_left and i == 0 and j == 0:
            break
        here = h[i][j]
        if i > 0 and j > 0 and \
                here == h[i - 1][j - 1] + _sub(model, q[i - 1], r[j - 1]):
            ops.append("=" if q[i - 1] == r[j - 1] else "X")
            i, j = i - 1, j - 1
        elif i > 0 and here == h[i - 1][j] + model.gap_i:
            ops.append("I")
            i -= 1
        elif j > 0 and here == h[i][j - 1] + model.gap_d:
            ops.append("D")
            j -= 1
        else:  # pragma: no cover - oracle matrices are consistent
            raise AssertionError(f"oracle traceback stuck at ({i}, {j})")
    ops.reverse()
    return ops, i, j


def oracle_global(q, r, model) -> tuple[int, str]:
    """(score, cigar) of optimal global alignment, brute force."""
    h = _linear_matrix(q, r, model, "global")
    ops, _, _ = _walk(h, q, r, model, len(q), len(r), stop_local=False,
                      free_left=False)
    return h[len(q)][len(r)], _cigar_string(ops)


def oracle_semiglobal(q, r, model) -> tuple[int, str, int, int]:
    """(score, cigar, ref_start, ref_end): whole query, free reference
    overhangs; the end column is the *first* maximum of the last row."""
    n, m = len(q), len(r)
    h = _linear_matrix(q, r, model, "semiglobal")
    end_j = max(range(m + 1), key=lambda j: (h[n][j], -j))
    ops, _, start_j = _walk(h, q, r, model, n, end_j, stop_local=False,
                            free_left=True)
    return h[n][end_j], _cigar_string(ops), start_j, end_j


def oracle_local(q, r, model) -> tuple[int, str, tuple[int, int, int, int]]:
    """(score, cigar, (q_start, q_end, r_start, r_end)); the end cell
    is the first maximum in row-major order."""
    n, m = len(q), len(r)
    h = _linear_matrix(q, r, model, "local")
    best_i = best_j = 0
    for i in range(n + 1):
        for j in range(m + 1):
            if h[i][j] > h[best_i][best_j]:
                best_i, best_j = i, j
    ops, start_i, start_j = _walk(h, q, r, model, best_i, best_j,
                                  stop_local=True, free_left=False)
    return (h[best_i][best_j], _cigar_string(ops),
            (start_i, best_i, start_j, best_j))


def oracle_affine(q, r, model, open_: int, extend: int) -> tuple[int, str]:
    """(score, cigar) of optimal global affine-gap (Gotoh) alignment.

    E is the deletion (gap-in-query / horizontal) chain, F the
    insertion chain; traceback priority is diagonal, then E, then F.
    """
    n, m = len(q), len(r)
    first = open_ + extend
    h = [[NEG] * (m + 1) for _ in range(n + 1)]
    e = [[NEG] * (m + 1) for _ in range(n + 1)]
    f = [[NEG] * (m + 1) for _ in range(n + 1)]
    h[0][0] = 0
    for j in range(1, m + 1):
        e[0][j] = open_ + extend * j
        h[0][j] = e[0][j]
    for i in range(1, n + 1):
        f[i][0] = open_ + extend * i
        h[i][0] = f[i][0]
        for j in range(1, m + 1):
            e[i][j] = max(h[i][j - 1] + first, e[i][j - 1] + extend)
            f[i][j] = max(h[i - 1][j] + first, f[i - 1][j] + extend)
            h[i][j] = max(h[i - 1][j - 1] + _sub(model, q[i - 1], r[j - 1]),
                          e[i][j], f[i][j])
    ops: list[str] = []
    i, j, state = n, m, "H"
    while i > 0 or j > 0:
        if state == "H":
            if i > 0 and j > 0 and h[i][j] == h[i - 1][j - 1] \
                    + _sub(model, q[i - 1], r[j - 1]):
                ops.append("=" if q[i - 1] == r[j - 1] else "X")
                i, j = i - 1, j - 1
            elif j > 0 and h[i][j] == e[i][j]:
                state = "E"
            elif i > 0 and h[i][j] == f[i][j]:
                state = "F"
            else:  # pragma: no cover
                raise AssertionError(f"oracle affine stuck at H({i},{j})")
        elif state == "E":
            ops.append("D")
            if e[i][j] == e[i][j - 1] + extend and j > 1:
                j -= 1
            else:
                j -= 1
                state = "H"
        else:
            ops.append("I")
            if f[i][j] == f[i - 1][j] + extend and i > 1:
                i -= 1
            else:
                i -= 1
                state = "H"
    ops.reverse()
    return h[n][m], _cigar_string(ops)


_CACHE: dict = {}


def cached_oracle(kind: str, config, q, r, extra=()):
    """Session-cached oracle dispatch so each (config, pair) is only
    brute-forced once -- the suite cross-checks many implementations
    against the same oracle result."""
    key = (kind, config.name, bytes(bytearray(q)), bytes(bytearray(r)),
           tuple(extra))
    if key not in _CACHE:
        model = config.model
        q_list, r_list = list(bytearray(q)), list(bytearray(r))
        if kind == "global":
            _CACHE[key] = oracle_global(q_list, r_list, model)
        elif kind == "semiglobal":
            _CACHE[key] = oracle_semiglobal(q_list, r_list, model)
        elif kind == "local":
            _CACHE[key] = oracle_local(q_list, r_list, model)
        elif kind == "affine":
            _CACHE[key] = oracle_affine(q_list, r_list, model, *extra)
        else:
            raise ValueError(f"unknown oracle kind {kind!r}")
    return _CACHE[key]
