"""Tests for the wavefront (WFA) edit-distance aligner."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.wavefront import WavefrontAligner
from repro.config import dna_gap_config
from repro.dp.dense import nw_matrix, nw_score
from repro.dp.traceback import alignment_from_matrix
from repro.encoding.alphabet import DNA
from repro.errors import AlignmentError, ConfigurationError
from repro.scoring.model import edit_model
from repro.workloads.synthetic import ONT_NANOPORE, mutate


@pytest.fixture(scope="module")
def model():
    return edit_model()


class TestCorrectness:
    @settings(deadline=None, max_examples=40)
    @given(seed=st.integers(0, 100_000), n=st.integers(0, 60),
           m=st.integers(0, 60))
    def test_score_matches_gold(self, model, seed, n, m):
        rng = np.random.default_rng(seed)
        q = DNA.random(n, rng)
        r = DNA.random(m, rng)
        result = WavefrontAligner().align(q, r, model)
        assert result.score == nw_score(q, r, model)

    def test_cigar_validates(self, model):
        rng = np.random.default_rng(3)
        r = DNA.random(300, rng)
        q, _ = mutate(r, ONT_NANOPORE, DNA, rng)
        result = WavefrontAligner().align(q, r, model)
        result.alignment.validate(q, r, model)

    def test_identical_sequences_score_zero(self, model):
        q = DNA.random(100, np.random.default_rng(0))
        result = WavefrontAligner().align(q, q, model)
        assert result.score == 0
        assert result.alignment.cigar == [(100, "=")]

    def test_empty_sequences(self, model):
        empty = np.array([], dtype=np.uint8)
        q = DNA.random(7, np.random.default_rng(1))
        assert WavefrontAligner().align(empty, q, model).score == -7
        assert WavefrontAligner().align(q, empty, model).score == -7
        assert WavefrontAligner().align(empty, empty, model).score == 0

    def test_matches_gold_cigar_score(self, model):
        """CIGAR may differ in tie-breaks; its score may not."""
        rng = np.random.default_rng(9)
        r = DNA.random(150, rng)
        q, _ = mutate(r, ONT_NANOPORE, DNA, rng)
        wfa = WavefrontAligner().align(q, r, model)
        gold = alignment_from_matrix(nw_matrix(q, r, model), q, r, model)
        assert wfa.score == gold.score
        assert wfa.alignment.rescore(q, r, model) == gold.score


class TestComplexity:
    def test_work_scales_with_distance_not_area(self, model):
        """O(n*s): similar pairs touch a tiny matrix fraction."""
        rng = np.random.default_rng(5)
        r = DNA.random(1500, rng)
        q, _ = mutate(r, ONT_NANOPORE, DNA, rng)
        result = WavefrontAligner().compute_score(q, r, model)
        fraction = result.stats.cells_computed / (len(q) * len(r))
        assert fraction < 0.05

    def test_dissimilar_pairs_cost_more(self, model):
        rng = np.random.default_rng(6)
        r = DNA.random(300, rng)
        similar, _ = mutate(r, ONT_NANOPORE, DNA, rng)
        unrelated = DNA.random(300, rng)
        cheap = WavefrontAligner().compute_score(similar, r, model)
        costly = WavefrontAligner().compute_score(unrelated, r, model)
        assert costly.stats.cells_computed > 3 * cheap.stats.cells_computed

    def test_linear_memory_score_mode(self, model):
        rng = np.random.default_rng(7)
        r = DNA.random(800, rng)
        q, _ = mutate(r, ONT_NANOPORE, DNA, rng)
        result = WavefrontAligner().compute_score(q, r, model)
        assert result.stats.cells_stored < 8 * len(q)


class TestValidation:
    def test_rejects_non_edit_model(self):
        q = DNA.random(5, np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="edit model"):
            WavefrontAligner().align(q, q, dna_gap_config().model)

    def test_max_score_cap(self, model):
        rng = np.random.default_rng(8)
        q = DNA.random(200, rng)
        r = DNA.random(200, rng)
        with pytest.raises(AlignmentError, match="max_score"):
            WavefrontAligner(max_score=5).align(q, r, model)
