"""ASCII text similarity: the information-retrieval use case.

SMX is "universal": the same hardware aligns raw 8-bit text under the
edit model (spell checking, record matching, plagiarism detection --
paper Sec. 1-2). This example ranks candidate strings against a query
by edit distance and shows the per-configuration ISA behaviour
(``smx.pack`` with 8-bit characters, VL = 8).

Run:  python examples/text_similarity.py
"""

from repro import SmxSystem, ascii_config
from repro.core.isa import Smx1D
from repro.core.registers import SmxState
from repro.encoding.packing import unpack_word


def pack_demo() -> None:
    config = ascii_config()
    unit = Smx1D(SmxState.for_config(config))
    raw = int.from_bytes(b"sequence", "little")
    packed = unit.smx_pack(raw)
    print("smx.pack('sequence') lanes:",
          bytes(unpack_word(packed, 8, 8)).decode())
    print()


def fuzzy_match() -> None:
    config = ascii_config()
    system = SmxSystem(config)
    query = "heterogeneous architecture"
    candidates = [
        "heterogeneous architecture",
        "heterogenous architecture",
        "heterogeneous architectures",
        "homogeneous architecture",
        "heterogeneous agriculture",
        "a completely different phrase",
    ]
    q_codes = config.encode(query)
    print(f"query: {query!r}")
    ranked = []
    for candidate in candidates:
        result = system.align(q_codes, config.encode(candidate))
        ranked.append((-result.score, candidate, result))
    ranked.sort(key=lambda item: item[0])
    print(f"{'edit distance':>14}  candidate")
    for distance, candidate, result in ranked:
        print(f"{distance:>14}  {candidate!r}")
    distance, candidate, result = ranked[1]
    print()
    print(f"closest non-identical match ({candidate!r}):")
    print(result.alignment.pretty(query, candidate))


if __name__ == "__main__":
    pack_demo()
    fuzzy_match()
