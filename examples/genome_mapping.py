"""End-to-end read mapping on a synthetic genome.

Builds a k-mer index over a random reference, maps error-profiled
reads back with the seed-chain-extend pipeline, verifies positions
against the ground truth, and reports the SMX speedup of the extension
phase -- the complete Minimap2-style story of paper Sec. 9.3 in one
script.

Run:  python examples/genome_mapping.py
"""

from repro.apps.readmapper import ReadMapper
from repro.workloads.genome import random_genome, sample_reads
from repro.workloads.synthetic import ONT_NANOPORE, PACBIO_HIFI


def main() -> None:
    genome = random_genome(100_000, seed=20250705)
    print(f"reference: {len(genome):,} bp; building 15-mer index...")
    mapper = ReadMapper(genome, k=15, band_fraction=0.15)

    for name, profile, length in (("PacBio-HiFi", PACBIO_HIFI, 1200),
                                  ("ONT", ONT_NANOPORE, 2000)):
        reads = sample_reads(genome, 15, length, profile,
                             seed=hash(name) % 2**31)
        report = mapper.map_all(reads, tolerance=30)
        print(f"\n{name}-like reads ({length} bp, "
              f"{profile.total:.1%} error):")
        print(f"  mapped    : {report.mapped_fraction:.0%}")
        print(f"  accurate  : {report.accuracy(reads):.0%} "
              f"(within 30 bp of truth)")
        sample = next(m for m in report.mappings if m.mapped)
        truth = reads.reads[sample.read_id].true_position
        print(f"  example   : read {sample.read_id} -> position "
              f"{sample.position:,} (truth {truth:,}), "
              f"score {sample.score}, {sample.seed_votes} seed votes")
        speedup = mapper.smx_extension_speedup(reads)
        print(f"  SMX extension-phase speedup vs SIMD: {speedup:.0f}x")


if __name__ == "__main__":
    main()
