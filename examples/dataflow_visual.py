"""Visualize the heterogeneous dataflow of one DP-block (paper Fig. 8a).

Renders which DP-elements the SMX execution actually touches: stored
tile borders (SMX-2D's only memory product), the alignment path, and
the tiles the core recomputes with SMX-1D during traceback -- making
the "compute everything, store almost nothing, recompute on demand"
strategy visible.

Run:  python examples/dataflow_visual.py
"""

import numpy as np

from repro import dna_edit_config
from repro.core.visualize import dataflow_stats, render_block_dataflow
from repro.workloads.synthetic import ONT_NANOPORE, mutate


def main() -> None:
    config = dna_edit_config()
    rng = np.random.default_rng(20250705)
    reference = config.alphabet.random(96, rng)
    query, _ = mutate(reference, ONT_NANOPORE, config.alphabet, rng)

    rendered = render_block_dataflow(config, query, reference)
    print(rendered)

    stats = dataflow_stats(rendered)
    total = sum(stats.values())
    print()
    print(f"{'touched as':<22}{'cells':>8}{'fraction':>10}")
    for kind in ("path", "recomputed", "border", "idle"):
        print(f"{kind:<22}{stats[kind]:>8}{stats[kind] / total:>10.1%}")
    print()
    print("Only the 'o' cells ever reach memory; '+' cells are "
          "recomputed on the fly by SMX-1D during traceback; '.' cells "
          "are computed once inside the engine and discarded.")


if __name__ == "__main__":
    main()
