"""Quickstart: align two DNA sequences on the SMX heterogeneous system.

Run:  python examples/quickstart.py
"""

from repro import SmxSystem, dna_edit_config


def main() -> None:
    config = dna_edit_config()
    system = SmxSystem(config)

    reference = "ACGTGGTCTGAAGCTATTGCCACGTATTGGCAACGTTTGCCAT"
    query = "ACGTGGTCTGAAACTATTGCCACGTTTGGCAACGTTGCCAT"

    q_codes = config.encode(query)
    r_codes = config.encode(reference)

    # Score-only offload: SMX-2D computes block borders, the core
    # reconstructs the score with smx.redsum (no traceback storage).
    score_result = system.score(q_codes, r_codes)
    print(f"alignment score : {score_result.score}")
    print(f"edit distance   : {-score_result.score}")

    # Full alignment: border-only storage + tile-recompute traceback.
    align_result = system.align(q_codes, r_codes)
    alignment = align_result.alignment
    print(f"CIGAR           : {alignment.cigar_string}")
    print(f"matches         : {alignment.matches}/{alignment.columns}"
          " columns")
    print(f"cells computed  : {align_result.cells_computed}")
    print(f"cells recomputed: {align_result.cells_recomputed}"
          " (traceback tiles only)")
    print(f"borders stored  : {align_result.border_elements_stored}"
          " DP-elements")
    print()
    print(alignment.pretty(query, reference))

    # How fast would this be on the simulated hardware?
    n, m = len(q_codes), len(r_codes)
    for impl in ("simd", "smx1d", "smx"):
        timing = system.implementation_timing(max(n, 64), max(m, 64),
                                              "align", impl)
        print(f"{impl:>6}: {timing.cycles:12.0f} cycles "
              f"({timing.gcups:8.3f} GCUPS)")


if __name__ == "__main__":
    main()
