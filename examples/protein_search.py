"""Protein database search scenario (the DIAMOND use case, Sec. 9.3).

Scores UniProt-like query/target pairs under BLOSUM50 on the SMX
protein configuration (6-bit characters, substitution-matrix mode),
shows the hardware submat memory in action, and projects the end-to-end
DIAMOND speedup.

Run:  python examples/protein_search.py
"""

from repro import (
    SmxProteinFullPipeline,
    SmxSystem,
    protein_config,
    uniprot_like,
)
from repro.analysis.metrics import diamond_endtoend_speedup
from repro.core.registers import SmxState
from repro.encoding.alphabet import PROTEIN


def submat_memory_demo() -> None:
    """The 78x64-bit smx_submat memory holds shifted BLOSUM50 scores."""
    config = protein_config()
    state = SmxState.for_config(config)
    print("smx_submat lookups (shifted by -(I+D) = 20):")
    for a, b in (("W", "W"), ("A", "A"), ("W", "D"), ("L", "I")):
        shifted = state.submat_lookup(ord(a) - 65, ord(b) - 65)
        print(f"  S'({a},{b}) = {shifted:2d}   (raw BLOSUM50 "
              f"{shifted - 20:+d})")
    print()


def search_demo() -> None:
    config = protein_config()
    system = SmxSystem(config, max_sim_tiles=100_000)
    dataset = uniprot_like(n_pairs=24)
    print(f"scoring {len(dataset)} UniProt-like pairs "
          f"(mean length {dataset.mean_length:.0f} aa)")

    # Functional: exact scores through the SMX dataflow.
    best = None
    for index, pair in enumerate(dataset):
        score = system.score(pair.q_codes, pair.r_codes).score
        if best is None or score > best[1]:
            best = (index, score, pair)
    index, score, pair = best
    print(f"best-scoring pair: #{index} score={score} "
          f"(divergence {pair.meta['divergence']:.0%})")
    print(f"  query  : {PROTEIN.decode(pair.q_codes[:48])}...")
    print(f"  target : {PROTEIN.decode(pair.r_codes[:48])}...")
    print()

    # Timing: the full-matrix protein pipeline of Fig. 11.
    pipeline = SmxProteinFullPipeline(system)
    timing = pipeline.timing(dataset)
    print(f"SMX protein-search kernel speedup : {timing.speedup:.0f}x "
          "over the SIMD baseline")
    print(f"SMX-engine utilization            : "
          f"{timing.smx.engine_utilization:.0%}")
    print(f"core busy (redsum reductions only): "
          f"{timing.smx.core_busy_fraction:.0%}")
    endtoend = diamond_endtoend_speedup(timing.speedup)
    print(f"projected DIAMOND end-to-end speedup: {endtoend:.1f}x")


if __name__ == "__main__":
    submat_memory_demo()
    search_demo()
