"""Long-read mapping scenario: algorithm trade-offs + SMX acceleration.

Reproduces the paper's motivating workflow (Sec. 1-3) on an ONT-like
synthetic dataset: compares the practical algorithm family on work,
memory, and recall (the Fig. 2 trade-off), then estimates the speedup
of the SMX-accelerated banded X-drop mapper (the Minimap2 use case of
Sec. 9.3).

Run:  python examples/read_mapping.py
"""

from repro import (
    BandedAligner,
    FullAligner,
    HirschbergAligner,
    SmxSystem,
    SmxXdropPipeline,
    WindowAligner,
    XdropAligner,
    dna_edit_config,
    dna_gap_config,
    ont_like,
)
from repro.analysis.metrics import (
    RecallStats,
    minimap2_endtoend_speedups,
)


def algorithm_tradeoffs() -> None:
    config = dna_edit_config()
    dataset = ont_like(n_pairs=4, scale=0.03)  # ~1.5 kbp reads
    gold = FullAligner()
    algorithms = [
        FullAligner(),
        BandedAligner(fraction=0.10),
        XdropAligner(fraction=0.08),
        HirschbergAligner(),
        WindowAligner(window=320, overlap=128),
    ]
    print(f"ONT-like reads: {len(dataset)} pairs, "
          f"~{dataset.mean_length:.0f} bp")
    print(f"{'algorithm':<20}{'computed':>10}{'stored':>10}{'recall':>8}")
    for algorithm in algorithms:
        recall = RecallStats()
        computed = stored = 0.0
        for pair in dataset:
            optimal = gold.compute_score(pair.q_codes, pair.r_codes,
                                         config.model).score
            result = algorithm.align(pair.q_codes, pair.r_codes,
                                     config.model)
            recall.record(None if result.failed else result.score, optimal)
            frac_c, frac_s = result.stats.fractions_of(pair.n, pair.m)
            computed += frac_c / len(dataset)
            stored += frac_s / len(dataset)
        print(f"{algorithm.name:<20}{computed:>9.1%}{stored:>9.1%}"
              f"{recall.recall:>8.0%}")


def smx_mapping_speedup() -> None:
    config = dna_gap_config()
    system = SmxSystem(config, max_sim_tiles=100_000)
    dataset = ont_like(n_pairs=4, scale=0.1)
    pipeline = SmxXdropPipeline(system)
    timing = pipeline.timing(dataset)
    print()
    print(f"SMX banded X-drop mapper on {len(dataset)} ONT-like reads:")
    print(f"  kernel speedup over SIMD : {timing.speedup:.0f}x")
    print(f"  alignments/second (SMX)  : "
          f"{timing.smx_alignments_per_second:,.0f}")
    print(f"  core busy                : "
          f"{timing.smx.core_busy_fraction:.0%}")
    print(f"  SMX-engine utilization   : "
          f"{timing.smx.engine_utilization:.0%}")
    low, high = minimap2_endtoend_speedups(timing.speedup)
    print(f"  projected Minimap2 end-to-end speedup: "
          f"{low:.1f}-{high:.1f}x")


if __name__ == "__main__":
    algorithm_tradeoffs()
    smx_mapping_speedup()
