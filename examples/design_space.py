"""Design-space exploration: workers, element widths, pipeline depth.

Uses the cycle-level SMX-2D simulator to reproduce the paper's design
decisions: why 4 workers (Fig. 10), what each EW configuration peaks at
(Table 3), and what the worker count costs in silicon (Fig. 13b).

Run:  python examples/design_space.py
"""

from repro import CoprocParams, CoprocessorSim, EngineParams
from repro.analysis.area import smx_area_breakdown
from repro.core.worker import BlockJob


def worker_sweep() -> None:
    print("SMX-engine utilization vs. workers (1000x1000 DNA-edit blocks)")
    print(f"{'workers':>8}{'utilization':>13}{'area mm^2':>11}")
    for workers in (1, 2, 4, 8):
        sim = CoprocessorSim(CoprocParams(n_workers=workers))
        jobs = [BlockJob(n=1000, m=1000, ew=2, job_id=i)
                for i in range(max(8, workers))]
        report = sim.run(jobs)
        area = smx_area_breakdown(n_workers=workers).smx2d
        print(f"{workers:>8}{report.engine_utilization:>12.0%}"
              f"{area:>11.3f}")
    print("-> 4 workers saturate the engine; more only costs area "
          "(paper Sec. 8.1)\n")


def element_width_sweep() -> None:
    engine = EngineParams()
    print("Per-EW engine configuration (Table 3 peaks)")
    print(f"{'EW':>4}{'tile':>8}{'latency':>9}{'peak GCUPS':>12}")
    for ew in (2, 4, 6, 8):
        print(f"{ew:>4}{engine.tile_dim(ew):>5}x{engine.tile_dim(ew):<2}"
              f"{engine.latency(ew):>8}{engine.peak_gcups(ew):>12.0f}")
    print()


def achieved_vs_peak() -> None:
    print("Achieved vs. peak cells/cycle (4 workers, large blocks)")
    print(f"{'EW':>4}{'achieved':>10}{'peak':>7}{'fraction':>10}")
    for ew in (2, 4, 6, 8):
        sim = CoprocessorSim(CoprocParams(n_workers=4))
        jobs = [BlockJob(n=2000, m=2000, ew=ew, job_id=i)
                for i in range(8)]
        report = sim.run(jobs)
        cells = sum(j.cells for j in jobs)
        achieved = cells / report.total_cycles
        peak = sim.peak_cells_per_cycle(ew)
        print(f"{ew:>4}{achieved:>10.0f}{peak:>7}"
              f"{achieved / peak:>10.0%}")


if __name__ == "__main__":
    worker_sweep()
    element_width_sweep()
    achieved_vs_peak()
